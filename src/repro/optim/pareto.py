"""Pareto-front utilities.

The Pareto front is the central data structure of the paper's flow: the
outcome of the circuit-level optimisation *is* the performance model
(section 3.3), so this module provides a convenient container
(:class:`ParetoFront`) plus the standard front-quality indicators used by
the ablation benchmarks (hypervolume, knee point, spacing).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.optim.individual import Individual

__all__ = [
    "dominates",
    "pareto_filter",
    "ParetoFront",
    "hypervolume",
    "knee_point",
    "spacing",
]


def dominates(a, b) -> bool:
    """Pareto dominance between two minimisation-convention vectors."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError("objective vectors must have the same shape")
    return bool(np.all(a <= b) and np.any(a < b))


def pareto_filter(points) -> np.ndarray:
    """Indices of the non-dominated rows of ``points`` (minimisation)."""
    arr = np.asarray(points, dtype=float)
    if arr.ndim != 2:
        raise ValueError("points must be a 2-D array of shape (n_points, n_objectives)")
    n = arr.shape[0]
    keep = np.ones(n, dtype=bool)
    for i in range(n):
        if not keep[i]:
            continue
        for j in range(n):
            if i == j or not keep[j]:
                continue
            if dominates(arr[j], arr[i]):
                keep[i] = False
                break
    return np.flatnonzero(keep)


class ParetoFront:
    """A set of mutually non-dominated individuals.

    The front records the problem's parameter and objective names so it can
    be exported to tabular form, written to ``.tbl`` data files and used to
    build the performance / variation models of the paper.
    """

    def __init__(
        self,
        individuals: Iterable[Individual],
        parameter_names: Sequence[str],
        objective_names: Sequence[str],
        objective_senses: Sequence[str] | None = None,
    ) -> None:
        self.individuals: List[Individual] = [ind for ind in individuals if ind.is_evaluated]
        self.parameter_names = list(parameter_names)
        self.objective_names = list(objective_names)
        self.objective_senses = (
            list(objective_senses)
            if objective_senses is not None
            else ["min"] * len(self.objective_names)
        )

    def __len__(self) -> int:
        return len(self.individuals)

    def __iter__(self):
        return iter(self.individuals)

    def __getitem__(self, index: int) -> Individual:
        return self.individuals[index]

    @property
    def parameters(self) -> np.ndarray:
        """Matrix of parameter vectors, one row per front member."""
        if not self.individuals:
            return np.empty((0, len(self.parameter_names)))
        return np.vstack([ind.parameters for ind in self.individuals])

    @property
    def objectives(self) -> np.ndarray:
        """Matrix of minimisation-convention objective vectors."""
        if not self.individuals:
            return np.empty((0, len(self.objective_names)))
        return np.vstack([ind.objectives for ind in self.individuals])

    def raw_objective(self, name: str) -> np.ndarray:
        """Raw (natural sense) values of one named objective across the front."""
        return np.array([ind.raw_objectives[name] for ind in self.individuals])

    def parameter(self, name: str) -> np.ndarray:
        """Values of one named parameter across the front."""
        index = self.parameter_names.index(name)
        return self.parameters[:, index]

    def to_records(self) -> List[Dict[str, float]]:
        """Flatten the front into dictionaries for tabular output."""
        return [ind.as_dict(self.parameter_names) for ind in self.individuals]

    def sorted_by(self, objective_name: str) -> "ParetoFront":
        """Return a new front sorted by one raw objective value."""
        order = np.argsort(self.raw_objective(objective_name), kind="stable")
        return ParetoFront(
            [self.individuals[i] for i in order],
            self.parameter_names,
            self.objective_names,
            self.objective_senses,
        )

    def non_dominated(self) -> "ParetoFront":
        """Re-filter the front, dropping any dominated members."""
        if not self.individuals:
            return self
        keep = pareto_filter(self.objectives)
        return ParetoFront(
            [self.individuals[i] for i in keep],
            self.parameter_names,
            self.objective_names,
            self.objective_senses,
        )


def hypervolume(points, reference) -> float:
    """Hypervolume dominated by ``points`` w.r.t. ``reference`` (minimisation).

    Uses an exact recursive slicing algorithm; adequate for the small fronts
    and objective counts (<= 5) used in this project.
    """
    arr = np.asarray(points, dtype=float)
    ref = np.asarray(reference, dtype=float)
    if arr.ndim != 2:
        raise ValueError("points must be 2-D")
    if ref.shape != (arr.shape[1],):
        raise ValueError("reference point dimensionality mismatch")
    # Only keep points that dominate the reference point.
    arr = arr[np.all(arr <= ref, axis=1)]
    if arr.size == 0:
        return 0.0
    arr = arr[pareto_filter(arr)]

    def recurse(front: np.ndarray, ref_point: np.ndarray) -> float:
        if front.shape[1] == 1:
            return float(ref_point[0] - front[:, 0].min())
        order = np.argsort(front[:, 0], kind="stable")
        front = front[order]
        total = 0.0
        previous = ref_point[0]
        # Sweep from the worst first coordinate towards the best, slicing.
        for i in range(front.shape[0] - 1, -1, -1):
            width = previous - front[i, 0]
            if width > 0.0:
                slab = front[: i + 1, 1:]
                slab = slab[pareto_filter(slab)] if slab.shape[0] > 1 else slab
                total += width * recurse(slab, ref_point[1:])
                previous = front[i, 0]
        return total

    return recurse(arr, ref)


def knee_point(points) -> int:
    """Index of the knee (best trade-off) point of a minimisation front.

    The knee is the point with the largest distance from the line (in
    normalised objective space) joining the extreme points -- the solution a
    designer would typically select when no objective is prioritised.
    """
    arr = np.asarray(points, dtype=float)
    if arr.ndim != 2 or arr.shape[0] == 0:
        raise ValueError("points must be a non-empty 2-D array")
    if arr.shape[0] == 1:
        return 0
    lo = arr.min(axis=0)
    hi = arr.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    normalised = (arr - lo) / span
    # Distance from the ideal point (0, ..., 0); smallest wins.
    distances = np.linalg.norm(normalised, axis=1)
    return int(np.argmin(distances))


def spacing(points) -> float:
    """Schott's spacing metric (uniformity of a front); 0 = perfectly even."""
    arr = np.asarray(points, dtype=float)
    if arr.ndim != 2 or arr.shape[0] < 2:
        return 0.0
    n = arr.shape[0]
    nearest = np.empty(n)
    for i in range(n):
        deltas = np.abs(arr - arr[i]).sum(axis=1)
        deltas[i] = np.inf
        nearest[i] = deltas.min()
    mean = nearest.mean()
    return float(np.sqrt(np.sum((nearest - mean) ** 2) / (n - 1)))
