"""Circuit library: the 5-stage current-starved ring-oscillator VCO.

The paper's circuit-level example is a 5-stage voltage-controlled ring
oscillator with 7 designable W/L parameters, evaluated for five
performance functions (jitter, current, gain, minimum and maximum
frequency).  This subpackage provides:

* :class:`~repro.circuits.ring_vco.VcoDesign` -- the 7-parameter design
  point with the paper's design-rule bounds,
* :func:`~repro.circuits.ring_vco.build_ring_vco` -- a transistor-level
  netlist generator for the topology (current-starved inverter stages plus
  a control-voltage bias mirror),
* :class:`~repro.circuits.testbench.VcoTestbench` -- the SPICE test bench
  that sweeps the control voltage and measures the five performances with
  the MNA engine,
* :class:`~repro.circuits.evaluators.RingVcoAnalyticalEvaluator` -- a
  calibrated first-order evaluator used inside the genetic-algorithm loop
  (3,000 evaluations would be impractical with pure-Python transients), and
* :class:`~repro.circuits.evaluators.RingVcoSpiceEvaluator` -- the
  transistor-level evaluator used for spot checks and bottom-up
  verification.
"""

from repro.circuits.evaluators import (
    RingVcoAnalyticalEvaluator,
    RingVcoSpiceEvaluator,
    VcoEvaluator,
)
from repro.circuits.performance import VcoPerformance
from repro.circuits.ring_vco import VcoDesign, build_ring_vco, vco_device_geometries
from repro.circuits.testbench import VcoTestbench

__all__ = [
    "VcoDesign",
    "VcoPerformance",
    "build_ring_vco",
    "vco_device_geometries",
    "VcoTestbench",
    "VcoEvaluator",
    "RingVcoAnalyticalEvaluator",
    "RingVcoSpiceEvaluator",
]
