"""The circuit-topology registry: the seam that makes the flow generic.

The paper's hierarchical methodology is circuit-agnostic -- the bottom-up
model build, the system-level NSGA-II and the yield verification are the
method; the ring VCO is only the demonstrator.  A
:class:`CircuitTopology` bundles everything the flow needs to know about
one circuit family:

* the design space (a frozen dataclass with ``as_dict`` / ``from_dict`` /
  ``parameter_names`` / ``optimisation_parameters`` / ``clamped``),
* factories for the analytical and transistor-level evaluators,
* the netlist builder and the mismatch device geometries,
* the stage-count constraint.

Everything in :mod:`repro.core` resolves topologies through this
registry (usually via :func:`topology_for_evaluator`) instead of
importing :mod:`repro.circuits.ring_vco` directly -- a lint test enforces
that.  Registering a new topology therefore threads a new circuit through
circuit optimisation, model build, system stage, yield analysis and
SPICE verification without touching the core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.circuits.evaluators import (
    RingVcoAnalyticalEvaluator,
    RingVcoSpiceEvaluator,
    VcoEvaluator,
)
from repro.circuits.pseudodiff import (
    PseudoDiffAnalyticalEvaluator,
    PseudoDiffSpiceEvaluator,
    PseudoDiffVcoDesign,
    build_pseudodiff_vco,
    pseudodiff_device_geometries,
)
from repro.circuits.ring_vco import (
    N_STAGES,
    VcoDesign,
    build_ring_vco,
    vco_device_geometries,
)
from repro.optim.problem import Parameter
from repro.process.technology import Technology

__all__ = [
    "CircuitTopology",
    "TOPOLOGIES",
    "DEFAULT_TOPOLOGY",
    "register_topology",
    "get_topology",
    "topology_names",
    "topology_for_evaluator",
    "topology_for_parameters",
    "design_from_parameters",
]

#: Registry key of the paper's demonstrator (and every scenario's default).
DEFAULT_TOPOLOGY = "ring-vco"


@dataclass(frozen=True)
class CircuitTopology:
    """Everything the hierarchical flow needs to know about one circuit.

    Parameters
    ----------
    name:
        Registry key (``ring-vco``, ``pseudodiff-vco``, ...).
    description:
        One-line human description (shown by ``repro list`` and the docs).
    design_cls:
        Frozen design-space dataclass.
    default_n_stages:
        Stage count used when a scenario or flow does not specify one.
    analytical_evaluator_factory:
        ``f(technology, n_stages) -> VcoEvaluator`` building the fast
        first-order evaluator driving optimisation and Monte Carlo.
    spice_evaluator_factory:
        ``f(technology, n_stages, n_workers, engine) -> VcoEvaluator``
        building the transistor-level reference evaluator.
    device_geometries:
        ``f(design, n_stages)`` listing every matched transistor for the
        mismatch model.
    build_circuit:
        ``f(design, technology, vctrl, n_stages, ...)`` netlist builder.
    validate_n_stages:
        ``f(n_stages) -> None`` raising ``ValueError`` on an unsupported
        stage count.
    """

    name: str
    description: str
    design_cls: type
    default_n_stages: int
    analytical_evaluator_factory: Callable[..., VcoEvaluator]
    spice_evaluator_factory: Callable[..., VcoEvaluator]
    device_geometries: Callable[..., List[Any]]
    build_circuit: Callable[..., Any]
    validate_n_stages: Callable[[int], None] = field(default=lambda n_stages: None)

    # -- design-space helpers ------------------------------------------------------------

    def parameter_names(self) -> List[str]:
        """Designable parameter names, in declaration order."""
        return self.design_cls.parameter_names()

    def optimisation_parameters(self, technology: Technology) -> List[Parameter]:
        """Bounded optimisation parameters for the given technology."""
        return self.design_cls.optimisation_parameters(technology)

    def design_from_mapping(self, values: Mapping[str, float]) -> Any:
        """Build a design point from a parameter name -> value mapping."""
        return self.design_cls.from_dict(dict(values))

    def resolve_n_stages(self, n_stages: Optional[int]) -> int:
        """Validate an explicit stage count or fall back to the default."""
        resolved = self.default_n_stages if n_stages is None else int(n_stages)
        self.validate_n_stages(resolved)
        return resolved

    # -- evaluator factories -------------------------------------------------------------

    def analytical_evaluator(
        self, technology: Technology, n_stages: Optional[int] = None
    ) -> VcoEvaluator:
        """The fast analytical evaluator of this topology."""
        return self.analytical_evaluator_factory(
            technology, self.resolve_n_stages(n_stages)
        )

    def spice_evaluator(
        self,
        technology: Technology,
        n_stages: Optional[int] = None,
        n_workers: Optional[int] = None,
        engine: str = "reference",
    ) -> VcoEvaluator:
        """The transistor-level reference evaluator of this topology."""
        return self.spice_evaluator_factory(
            technology, self.resolve_n_stages(n_stages), n_workers, engine
        )

    # -- serialisation -------------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """JSON-compatible summary (used by docs and the service listing)."""
        return {
            "name": self.name,
            "description": self.description,
            "default_n_stages": self.default_n_stages,
            "parameters": self.parameter_names(),
        }


#: All registered topologies, keyed by name.
TOPOLOGIES: Dict[str, CircuitTopology] = {}


def register_topology(topology: CircuitTopology, overwrite: bool = False) -> CircuitTopology:
    """Add a topology to the registry and return it."""
    if not overwrite and topology.name in TOPOLOGIES:
        raise ValueError(f"topology {topology.name!r} is already registered")
    TOPOLOGIES[topology.name] = topology
    return topology


def get_topology(name: str) -> CircuitTopology:
    """Look up a registered topology by name.

    Raises
    ------
    KeyError
        With the list of known names if ``name`` is not registered.
    """
    try:
        return TOPOLOGIES[name]
    except KeyError:
        known = ", ".join(topology_names())
        raise KeyError(f"unknown topology {name!r}; registered topologies: {known}") from None


def topology_names() -> List[str]:
    """Names of all registered topologies, in registration order."""
    return list(TOPOLOGIES)


def topology_for_evaluator(evaluator: Any) -> CircuitTopology:
    """Resolve an evaluator instance back to its registered topology.

    Evaluators carry a ``topology_name`` class attribute; anything without
    one (e.g. a hand-rolled test double built around the ring design
    space) resolves to the default ring topology, which preserves the
    pre-seam behaviour.
    """
    return get_topology(getattr(evaluator, "topology_name", DEFAULT_TOPOLOGY))


def topology_for_parameters(parameter_names: Sequence[str]) -> CircuitTopology:
    """Resolve a design-parameter-name set back to its topology.

    The performance model stores only parameter names and arrays (its
    pickle format predates the topology seam), so recovering the topology
    dispatches on the *set* of names -- every registered topology has a
    distinct design space.
    """
    wanted = set(parameter_names)
    for topology in TOPOLOGIES.values():
        if set(topology.parameter_names()) == wanted:
            return topology
    raise KeyError(
        f"no registered topology has the design parameters {sorted(wanted)}"
    )


def design_from_parameters(
    parameter_names: Sequence[str], values: Mapping[str, float]
) -> Any:
    """Build a design point by matching a parameter-name set to a topology."""
    return topology_for_parameters(parameter_names).design_from_mapping(dict(values))


# -- built-in topologies ---------------------------------------------------------------


def _validate_ring_stages(n_stages: int) -> None:
    if n_stages < 3 or n_stages % 2 == 0:
        raise ValueError("n_stages must be an odd integer >= 3 (ring oscillator)")


def _validate_pseudodiff_stages(n_stages: int) -> None:
    if n_stages < 3 or n_stages % 2 == 0:
        raise ValueError(
            "n_stages must be an odd integer >= 3 (pseudo-differential ring pair)"
        )


def _ring_analytical(technology: Technology, n_stages: int) -> RingVcoAnalyticalEvaluator:
    return RingVcoAnalyticalEvaluator(technology, n_stages=n_stages)


def _ring_spice(
    technology: Technology, n_stages: int, n_workers: Optional[int], engine: str
) -> RingVcoSpiceEvaluator:
    return RingVcoSpiceEvaluator(
        technology, n_stages=n_stages, n_workers=n_workers, engine=engine
    )


def _pseudodiff_analytical(
    technology: Technology, n_stages: int
) -> PseudoDiffAnalyticalEvaluator:
    return PseudoDiffAnalyticalEvaluator(technology, n_stages=n_stages)


def _pseudodiff_spice(
    technology: Technology, n_stages: int, n_workers: Optional[int], engine: str
) -> PseudoDiffSpiceEvaluator:
    return PseudoDiffSpiceEvaluator(
        technology, n_stages=n_stages, n_workers=n_workers, engine=engine
    )


register_topology(
    CircuitTopology(
        name="ring-vco",
        description="Current-starved ring oscillator (the paper's figure-6 demonstrator)",
        design_cls=VcoDesign,
        default_n_stages=N_STAGES,
        analytical_evaluator_factory=_ring_analytical,
        spice_evaluator_factory=_ring_spice,
        device_geometries=vco_device_geometries,
        build_circuit=build_ring_vco,
        validate_n_stages=_validate_ring_stages,
    )
)

register_topology(
    CircuitTopology(
        name="pseudodiff-vco",
        description="Pseudo-differential multi-phase VCO (two anti-phase coupled rings)",
        design_cls=PseudoDiffVcoDesign,
        default_n_stages=N_STAGES,
        analytical_evaluator_factory=_pseudodiff_analytical,
        spice_evaluator_factory=_pseudodiff_spice,
        device_geometries=pseudodiff_device_geometries,
        build_circuit=build_pseudodiff_vco,
        validate_n_stages=_validate_pseudodiff_stages,
    )
)
