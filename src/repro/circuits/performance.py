"""The VCO performance record shared by all evaluators.

The five performance functions of section 4.1 of the paper: jitter,
current consumption, gain (Kvco), minimum frequency and maximum frequency.
Values are stored in SI units; the convenience properties convert to the
units the paper's tables use (MHz/V, ps, mA).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["VcoPerformance"]


@dataclass(frozen=True)
class VcoPerformance:
    """Evaluated performances of one VCO design point (SI units)."""

    #: VCO gain dF/dVctrl in Hz/V.
    kvco: float
    #: RMS period jitter in seconds.
    jitter: float
    #: Supply current in amperes (average over oscillation).
    current: float
    #: Oscillation frequency at the minimum control voltage (Hz).
    fmin: float
    #: Oscillation frequency at the maximum control voltage (Hz).
    fmax: float

    # -- unit conversions matching the paper's tables -----------------------------

    @property
    def kvco_mhz_per_v(self) -> float:
        """Gain in MHz/V (the unit used in Table 1)."""
        return self.kvco / 1e6

    @property
    def jitter_ps(self) -> float:
        """Jitter in picoseconds (the unit used in Table 1)."""
        return self.jitter * 1e12

    @property
    def current_ma(self) -> float:
        """Current in milliamperes (the unit used in Table 1)."""
        return self.current * 1e3

    @property
    def fmin_ghz(self) -> float:
        """Minimum frequency in GHz."""
        return self.fmin / 1e9

    @property
    def fmax_ghz(self) -> float:
        """Maximum frequency in GHz."""
        return self.fmax / 1e9

    @property
    def tuning_range(self) -> float:
        """Frequency tuning range ``fmax - fmin`` in Hz."""
        return self.fmax - self.fmin

    def as_dict(self) -> Dict[str, float]:
        """Flatten to the dictionary format used by optimiser and MC engine."""
        return {
            "kvco": self.kvco,
            "jitter": self.jitter,
            "current": self.current,
            "fmin": self.fmin,
            "fmax": self.fmax,
        }

    @staticmethod
    def objective_senses() -> Dict[str, str]:
        """Optimisation sense of each performance (paper section 4.1)."""
        return {
            "kvco": "max",
            "jitter": "min",
            "current": "min",
            "fmin": "min",
            "fmax": "max",
        }

    @classmethod
    def from_dict(cls, values: Dict[str, float]) -> "VcoPerformance":
        """Rebuild a record from a flat dictionary."""
        return cls(
            kvco=float(values["kvco"]),
            jitter=float(values["jitter"]),
            current=float(values["current"]),
            fmin=float(values["fmin"]),
            fmax=float(values["fmax"]),
        )
