"""The 5-stage current-starved ring-oscillator VCO.

Topology (figure 6 of the paper, reconstructed): five identical
current-starved inverter stages in a ring.  Each stage consists of

* a PMOS starving transistor from VDD (gate driven by the bias voltage
  generated from the control voltage),
* the PMOS/NMOS inverter pair, and
* an NMOS starving transistor to ground (gate driven directly by the
  control voltage ``vctrl``).

A two-transistor current mirror converts the control voltage into the PMOS
bias so that the pull-up and pull-down starving currents track each other.
Raising ``vctrl`` increases the starving current and therefore the
oscillation frequency, which is what gives the VCO its gain ``Kvco``.

The seven designable parameters of section 4.1 are the inverter widths and
lengths (NMOS and PMOS), the two starving-transistor widths and the shared
starving-transistor length.  Bounds follow the paper: lengths 0.12-1 um and
widths 10-100 um.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List

from repro.optim.problem import Parameter
from repro.process.mismatch import DeviceGeometry
from repro.process.technology import TECH_012UM, Technology
from repro.spice.elements import Capacitor, VoltageSource
from repro.spice.mosfet import MOSFET
from repro.spice.netlist import Circuit

__all__ = ["VcoDesign", "build_ring_vco", "vco_device_geometries", "N_STAGES"]

#: Number of inverter stages in the ring (figure 6 of the paper).
N_STAGES = 5


@dataclass(frozen=True)
class VcoDesign:
    """The seven designable parameters of the ring-oscillator VCO (metres)."""

    nmos_width: float = 30e-6
    nmos_length: float = 0.24e-6
    pmos_width: float = 60e-6
    pmos_length: float = 0.24e-6
    tail_nmos_width: float = 40e-6
    tail_pmos_width: float = 80e-6
    tail_length: float = 0.24e-6

    def __post_init__(self) -> None:
        for item in fields(self):
            value = getattr(self, item.name)
            if value <= 0.0:
                raise ValueError(f"VCO design parameter {item.name!r} must be positive")

    # -- conversions ----------------------------------------------------------------

    def as_dict(self) -> Dict[str, float]:
        """Parameter name -> value mapping (metres)."""
        return {item.name: float(getattr(self, item.name)) for item in fields(self)}

    @classmethod
    def from_dict(cls, values: Dict[str, float]) -> "VcoDesign":
        """Build a design point from a name -> value mapping."""
        names = {item.name for item in fields(cls)}
        unknown = set(values) - names
        if unknown:
            raise KeyError(f"unknown VCO design parameter(s): {sorted(unknown)}")
        return cls(**{name: float(values[name]) for name in names if name in values})

    @classmethod
    def parameter_names(cls) -> List[str]:
        """The seven designable parameter names, in declaration order."""
        return [item.name for item in fields(cls)]

    @classmethod
    def optimisation_parameters(cls, technology: Technology = TECH_012UM) -> List[Parameter]:
        """Designable parameters with the paper's design-rule bounds."""
        w_lo, w_hi = technology.min_width, technology.max_width
        l_lo, l_hi = technology.min_length, technology.max_length
        bounds = {
            "nmos_width": (w_lo, w_hi),
            "nmos_length": (l_lo, l_hi),
            "pmos_width": (w_lo, w_hi),
            "pmos_length": (l_lo, l_hi),
            "tail_nmos_width": (w_lo, w_hi),
            "tail_pmos_width": (w_lo, w_hi),
            "tail_length": (l_lo, l_hi),
        }
        return [
            Parameter(name, lower, upper, unit="m") for name, (lower, upper) in bounds.items()
        ]

    def clamped(self, technology: Technology = TECH_012UM) -> "VcoDesign":
        """Return a copy with every parameter clamped into the design rules."""
        values = self.as_dict()
        for name in ("nmos_width", "pmos_width", "tail_nmos_width", "tail_pmos_width"):
            values[name] = technology.clamp_width(values[name])
        for name in ("nmos_length", "pmos_length", "tail_length"):
            values[name] = technology.clamp_length(values[name])
        return VcoDesign.from_dict(values)


def vco_device_geometries(design: VcoDesign, n_stages: int = N_STAGES) -> List[DeviceGeometry]:
    """Geometries of every matched transistor (for the mismatch model)."""
    geometries: List[DeviceGeometry] = []
    for stage in range(n_stages):
        geometries.extend(
            [
                DeviceGeometry(f"mp{stage}", design.pmos_width, design.pmos_length, "pmos"),
                DeviceGeometry(f"mn{stage}", design.nmos_width, design.nmos_length, "nmos"),
                DeviceGeometry(
                    f"mtp{stage}", design.tail_pmos_width, design.tail_length, "pmos"
                ),
                DeviceGeometry(
                    f"mtn{stage}", design.tail_nmos_width, design.tail_length, "nmos"
                ),
            ]
        )
    geometries.append(DeviceGeometry("mbn", design.tail_nmos_width, design.tail_length, "nmos"))
    geometries.append(DeviceGeometry("mbp", design.tail_pmos_width, design.tail_length, "pmos"))
    return geometries


def build_ring_vco(
    design: VcoDesign,
    technology: Technology = TECH_012UM,
    vctrl: float = 0.8,
    n_stages: int = N_STAGES,
    extra_load: float | None = None,
    device_overrides: Dict[str, Dict[str, float]] | None = None,
) -> Circuit:
    """Build the transistor-level netlist of the current-starved ring VCO.

    Parameters
    ----------
    design:
        The seven designable parameters.
    technology:
        Process description providing the NMOS/PMOS model cards and supply.
    vctrl:
        Control voltage applied by the test bench.
    n_stages:
        Number of ring stages (odd; the paper uses five).
    extra_load:
        Additional load capacitance per stage output.  Defaults to the
        technology's ``stage_load_capacitance`` (layout parasitics).
    device_overrides:
        Optional per-device model-card overrides (``{"mn0": {"vth0": ...}}``)
        used to apply Monte Carlo mismatch deltas at transistor level.
    """
    if n_stages < 3 or n_stages % 2 == 0:
        raise ValueError("a ring oscillator needs an odd number of stages >= 3")
    overrides = device_overrides or {}
    load = technology.stage_load_capacitance if extra_load is None else float(extra_load)

    def model_for(device_name: str, polarity: str):
        base = technology.model(polarity)
        deltas = overrides.get(device_name)
        if not deltas:
            return base
        updates = {}
        for key, delta in deltas.items():
            if key == "u0_rel":
                updates["u0"] = base.u0 * (1.0 + delta)
            elif hasattr(base, key):
                updates[key] = getattr(base, key) + delta
        return base.with_variation(**updates) if updates else base

    circuit = Circuit(f"ring_vco_{n_stages}stage")
    circuit.add(VoltageSource("vdd", "vdd", "0", technology.vdd))
    circuit.add(VoltageSource("vc", "vctrl", "0", vctrl))
    # Bias mirror: NMOS converts vctrl to a current, diode-connected PMOS
    # produces the PMOS starving bias voltage 'vbp'.
    circuit.add(
        MOSFET(
            "mbn",
            "vbp",
            "vctrl",
            "0",
            "0",
            model_for("mbn", "nmos"),
            design.tail_nmos_width,
            design.tail_length,
        )
    )
    circuit.add(
        MOSFET(
            "mbp",
            "vbp",
            "vbp",
            "vdd",
            "vdd",
            model_for("mbp", "pmos"),
            design.tail_pmos_width,
            design.tail_length,
        )
    )
    for stage in range(n_stages):
        node_in = f"n{stage}"
        node_out = f"n{(stage + 1) % n_stages}"
        node_top = f"sp{stage}"
        node_bot = f"sn{stage}"
        circuit.add(
            MOSFET(
                f"mtp{stage}",
                node_top,
                "vbp",
                "vdd",
                "vdd",
                model_for(f"mtp{stage}", "pmos"),
                design.tail_pmos_width,
                design.tail_length,
            )
        )
        circuit.add(
            MOSFET(
                f"mp{stage}",
                node_out,
                node_in,
                node_top,
                "vdd",
                model_for(f"mp{stage}", "pmos"),
                design.pmos_width,
                design.pmos_length,
            )
        )
        circuit.add(
            MOSFET(
                f"mn{stage}",
                node_out,
                node_in,
                node_bot,
                "0",
                model_for(f"mn{stage}", "nmos"),
                design.nmos_width,
                design.nmos_length,
            )
        )
        circuit.add(
            MOSFET(
                f"mtn{stage}",
                node_bot,
                "vctrl",
                "0",
                "0",
                model_for(f"mtn{stage}", "nmos"),
                design.tail_nmos_width,
                design.tail_length,
            )
        )
        circuit.add(Capacitor(f"cl{stage}", node_out, "0", load))
    return circuit
