"""VCO performance evaluators.

Two evaluators implement the same interface (:class:`VcoEvaluator`):

* :class:`RingVcoSpiceEvaluator` runs the transistor-level test bench of
  :mod:`repro.circuits.testbench` on the MNA engine.  It is the
  ground-truth engine used for bottom-up verification and spot checks, but
  a single evaluation costs a few seconds of pure-Python transient
  simulation.

* :class:`RingVcoAnalyticalEvaluator` computes the same five performances
  from first-order device physics (starving current from the shared MOSFET
  model equations, delay = C V / I, thermal-noise jitter, dynamic +
  crowbar supply current).  One evaluation costs microseconds, which makes
  the paper's 3,000-sample NSGA-II run and the per-Pareto-point Monte Carlo
  analysis laptop-scale.  Its calibration factors were fitted against the
  SPICE evaluator so that both engines agree on trends and roughly on
  magnitude (see ``examples/vco_characterisation.py`` and the unit tests).

Both evaluators accept a technology override and a mismatch sample, which
is how the Monte Carlo engine injects global process variation and local
device mismatch.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.performance import VcoPerformance
from repro.circuits.ring_vco import N_STAGES, VcoDesign
from repro.circuits.testbench import VcoTestbench
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.process.mismatch import MismatchSample
from repro.process.technology import TECH_012UM, Technology
from repro.spice.mosfet import _ELECTRON_CHARGE, _EPS_OX, MOSFET

__all__ = ["VcoEvaluator", "RingVcoAnalyticalEvaluator", "RingVcoSpiceEvaluator"]

_BOLTZMANN = 1.380649e-23

#: VCO evaluations performed, labelled by evaluator backend.
EVALUATIONS = obs_metrics.get_registry().counter(
    "repro_evaluations_total",
    "VCO evaluations performed, by evaluator backend",
    ("backend",),
)

#: Batch adapter signature used by ``MonteCarloEngine.run_batch``: lists of
#: per-sample technologies and mismatch samples in, one performance
#: dictionary per sample out.
BatchMonteCarloEvaluator = Callable[
    [Sequence[Technology], Sequence[MismatchSample]], List[Dict[str, float]]
]


class VcoEvaluator:
    """Interface shared by the analytical and the SPICE evaluator."""

    technology: Technology

    def evaluate(
        self,
        design: VcoDesign,
        technology: Optional[Technology] = None,
        mismatch: Optional[MismatchSample] = None,
    ) -> VcoPerformance:
        """Evaluate the five performances of one design point."""
        raise NotImplementedError

    def evaluate_batch(
        self,
        designs: Sequence[VcoDesign],
        technology: Optional[Technology] = None,
        technologies: Optional[Sequence[Technology]] = None,
        mismatches: Optional[Sequence[MismatchSample]] = None,
    ) -> List[VcoPerformance]:
        """Evaluate many (design, technology, mismatch) combinations at once.

        Length-1 inputs broadcast against the longest input, covering both
        batch shapes the flow needs: N designs under one technology (the
        NSGA-II population) and one design under N sampled technologies /
        mismatch draws (the Monte Carlo analysis).  The base implementation
        loops :meth:`evaluate`; the analytical evaluator overrides it with
        numpy array math.
        """
        designs, technologies, mismatches = _broadcast_batch(
            designs, technology or self.technology, technologies, mismatches
        )
        return [
            self.evaluate(design, technology=tech, mismatch=mismatch)
            for design, tech, mismatch in zip(designs, technologies, mismatches)
        ]

    def monte_carlo_evaluator(
        self, design: VcoDesign
    ) -> Callable[[Technology, MismatchSample], Dict[str, float]]:
        """Adapter with the signature expected by the Monte Carlo engine."""

        def _evaluate(technology: Technology, mismatch: MismatchSample) -> Dict[str, float]:
            return self.evaluate(design, technology=technology, mismatch=mismatch).as_dict()

        return _evaluate

    def monte_carlo_batch_evaluator(self, design: VcoDesign) -> BatchMonteCarloEvaluator:
        """Batch adapter for ``MonteCarloEngine.run_batch``."""

        def _evaluate(
            technologies: Sequence[Technology], mismatches: Sequence[MismatchSample]
        ) -> List[Dict[str, float]]:
            performances = self.evaluate_batch(
                [design], technologies=technologies, mismatches=mismatches
            )
            return [performance.as_dict() for performance in performances]

        return _evaluate


def _broadcast_batch(designs, technology, technologies, mismatches):
    """Broadcast length-1 batch inputs against the longest one."""
    designs = list(designs)
    technologies = list(technologies) if technologies is not None else [technology]
    mismatches = list(mismatches) if mismatches is not None else [None]
    n = max(len(designs), len(technologies), len(mismatches))
    for name, items in (
        ("designs", designs),
        ("technologies", technologies),
        ("mismatches", mismatches),
    ):
        if len(items) not in (1, n):
            raise ValueError(
                f"batch input {name!r} has length {len(items)}, expected 1 or {n}"
            )
    if len(designs) == 1:
        designs = designs * n
    if len(technologies) == 1:
        technologies = technologies * n
    if len(mismatches) == 1:
        mismatches = mismatches * n
    return designs, technologies, mismatches


def _softplus_overdrive(vov: np.ndarray, n_vt: np.ndarray) -> np.ndarray:
    """Elementwise smoothed overdrive, bit-identical to the scalar model.

    This is the softplus transition of :meth:`MOSFET._channel_current`.
    It deliberately calls ``math.exp`` / ``math.log1p`` per element instead
    of the numpy ufuncs: numpy's SIMD transcendentals can differ from libm
    by an ulp, which is enough to push a seeded NSGA-II run onto a
    different trajectory.  Everything around this helper is IEEE-exact
    array arithmetic, so the per-element loop here is what buys exact
    serial/vectorised equivalence.
    """
    vov_b, nvt_b = np.broadcast_arrays(np.asarray(vov, float), np.asarray(n_vt, float))
    out = np.empty(vov_b.shape, dtype=float)
    flat = out.ravel()
    for index, (v, nvt) in enumerate(zip(vov_b.ravel().tolist(), nvt_b.ravel().tolist())):
        ratio = v / nvt
        if ratio > 40.0:
            flat[index] = v
        elif ratio < -40.0:
            flat[index] = nvt * math.exp(ratio)
        else:
            flat[index] = nvt * math.log1p(math.exp(ratio))
    return out


@dataclass
class _DeviceArrays:
    """Model-card and geometry parameters of one device type, as arrays.

    Every field mirrors an attribute consumed by the scalar
    :meth:`MOSFET._channel_current`; values are either scalars or length-N
    arrays (N = batch size), so the same expressions evaluate the whole
    batch at once.
    """

    polarity: int
    width: np.ndarray
    length: np.ndarray
    vth0: np.ndarray
    u0: np.ndarray
    tox: np.ndarray
    lambda_: np.ndarray
    gamma: np.ndarray
    phi: np.ndarray
    n_sub: np.ndarray
    e_crit: np.ndarray
    ld: np.ndarray
    temperature: np.ndarray

    def channel_current(self, vgs: float, vds: float, vbs: float) -> np.ndarray:
        """Vectorised transcription of :meth:`MOSFET._channel_current`.

        The expressions below keep the scalar code's operation order so
        results stay bit-identical (IEEE arithmetic is deterministic for a
        fixed evaluation order).
        """
        effective_length = np.maximum(self.length - 2.0 * self.ld, 1.0e-9)
        cox = _EPS_OX / self.tox
        kp = self.u0 * cox
        beta = kp * self.width / effective_length
        phi_minus_vbs = np.maximum(self.phi - vbs, 1e-6)
        vth = self.vth0 + self.gamma * (np.sqrt(phi_minus_vbs) - np.sqrt(self.phi))
        vov = vgs - vth
        thermal_voltage = _BOLTZMANN * self.temperature / _ELECTRON_CHARGE
        n_vt = self.n_sub * thermal_voltage
        vov_eff = _softplus_overdrive(vov, n_vt)
        theta = 1.0 / (self.e_crit * effective_length)
        vov_eff = vov_eff / (1.0 + theta * vov_eff)
        vdsat = np.maximum(vov_eff, 1e-9)
        clm = 1.0 + self.lambda_ * vds
        triode = beta * (vov_eff * vds - 0.5 * vds * vds) * clm
        saturation = 0.5 * beta * vov_eff * vov_eff * clm
        ids = np.where(vds < vdsat, triode, saturation)
        return np.maximum(ids, 0.0)

    def drain_current(self, vd: float, vg: float, vs: float, vb: float) -> np.ndarray:
        """Vectorised transcription of :meth:`MOSFET.drain_current`.

        Bias voltages are scalars in every call site, so the source/drain
        swap resolves to one branch for the whole batch.
        """
        p = self.polarity
        nvd, nvg, nvs, nvb = p * vd, p * vg, p * vs, p * vb
        if nvd >= nvs:
            ids = self.channel_current(nvg - nvs, nvd - nvs, nvb - nvs)
            return p * ids
        ids = self.channel_current(nvg - nvd, nvs - nvd, nvb - nvd)
        return -p * ids


#: Model-card attributes consumed by the vectorised kernel.
_CARD_ATTRIBUTES = (
    "vth0",
    "u0",
    "tox",
    "lambda_",
    "gamma",
    "phi",
    "n_sub",
    "e_crit",
    "ld",
    "cgso",
    "cj",
    "drain_extension",
    "temperature",
)


def _card_arrays(cards) -> Dict:
    """Gather one model card per sample into attribute arrays.

    When every sample shares the same card object (the optimisation batch
    shape) plain scalars are returned, which keeps the array expressions
    cheap; otherwise each attribute becomes a length-N array (the Monte
    Carlo batch shape, where global variation shifts every card).
    """
    first = cards[0]
    if all(card is first for card in cards):
        values = {attr: getattr(first, attr) for attr in _CARD_ATTRIBUTES}
    else:
        values = {
            attr: np.array([getattr(card, attr) for card in cards])
            for attr in _CARD_ATTRIBUTES
        }
    values["polarity"] = first.polarity
    return values


def _mismatch_deltas(mismatches, device_name: str):
    """Per-sample (vth0, u0_rel) mismatch deltas of one device, as arrays."""
    if mismatches is None:
        return None
    vth0 = np.empty(len(mismatches))
    u0_rel = np.empty(len(mismatches))
    for index, mismatch in enumerate(mismatches):
        deltas = mismatch.for_device(device_name) if mismatch is not None else {}
        vth0[index] = deltas.get("vth0", 0.0)
        u0_rel[index] = deltas.get("u0_rel", 0.0)
    return vth0, u0_rel


def _device_arrays(card: Dict, width, length, deltas) -> _DeviceArrays:
    """Build the batch device parameters, applying mismatch like `_device`."""
    vth0 = card["vth0"]
    u0 = card["u0"]
    if deltas is not None:
        delta_vth0, delta_u0 = deltas
        vth0 = vth0 + delta_vth0
        u0 = u0 * (1.0 + delta_u0)
    return _DeviceArrays(
        polarity=card["polarity"],
        width=width,
        length=length,
        vth0=vth0,
        u0=u0,
        tox=card["tox"],
        lambda_=card["lambda_"],
        gamma=card["gamma"],
        phi=card["phi"],
        n_sub=card["n_sub"],
        e_crit=card["e_crit"],
        ld=card["ld"],
        temperature=card["temperature"],
    )


@dataclass
class _StageBias:
    """Starving current and effective load of one inverter stage."""

    current: float
    load_capacitance: float
    overdrive: float


class RingVcoAnalyticalEvaluator(VcoEvaluator):
    """Calibrated first-order performance model of the current-starved ring VCO.

    Parameters
    ----------
    technology:
        Nominal process description.
    vctrl_min / vctrl_max:
        Control-voltage window over which gain and tuning range are defined
        (matches the SPICE test bench defaults).
    frequency_scale / current_scale / jitter_scale:
        Calibration factors multiplying the first-order expressions.  The
        defaults (0.42 / 0.52 / 3.0) were fitted against
        :class:`RingVcoSpiceEvaluator` on the default design point so both
        engines agree on magnitude; trends with respect to the designable
        parameters agree by construction because both use the same device
        equations.  Use :meth:`calibrate` to re-fit for a different
        technology.
    """

    #: Topology hooks consumed by :mod:`repro.circuits.topology`: the seam
    #: resolves an evaluator back to its registered topology through
    #: ``topology_name``, and the vectorised kernel reads the design space
    #: from ``design_cls`` instead of hardcoding the ring parameters.
    #: Class attributes keep pickled instances byte-identical (they never
    #: enter ``__dict__``).
    topology_name = "ring-vco"
    design_cls = VcoDesign
    _WIDTH_PARAMS = ("nmos_width", "pmos_width", "tail_nmos_width", "tail_pmos_width")
    _LENGTH_PARAMS = ("nmos_length", "pmos_length", "tail_length")

    def __init__(
        self,
        technology: Technology = TECH_012UM,
        vctrl_min: float = 0.5,
        vctrl_max: float | None = None,
        n_stages: int = N_STAGES,
        frequency_scale: float = 0.42,
        current_scale: float = 0.52,
        jitter_scale: float = 3.0,
    ) -> None:
        self.technology = technology
        self.vctrl_min = vctrl_min
        self.vctrl_max = technology.vdd if vctrl_max is None else vctrl_max
        self.n_stages = n_stages
        self.frequency_scale = frequency_scale
        self.current_scale = current_scale
        self.jitter_scale = jitter_scale

    # -- calibration -----------------------------------------------------------------

    @classmethod
    def calibrate(
        cls,
        spice_evaluator: "RingVcoSpiceEvaluator",
        designs: Sequence[VcoDesign],
        technology: Optional[Technology] = None,
        **kwargs,
    ) -> "RingVcoAnalyticalEvaluator":
        """Fit the calibration factors against the transistor-level evaluator.

        The scale factors are the geometric-mean ratios of the SPICE
        measurements to the uncalibrated analytical predictions over the
        given design sample.  This is how the default factors were obtained.
        """
        if not designs:
            raise ValueError("calibration needs at least one design point")
        tech = technology or spice_evaluator.technology
        raw = cls(
            technology=tech,
            vctrl_min=spice_evaluator.vctrl_min,
            vctrl_max=spice_evaluator.vctrl_max,
            n_stages=spice_evaluator.n_stages,
            frequency_scale=1.0,
            current_scale=1.0,
            jitter_scale=1.0,
        )
        freq_ratios, current_ratios, jitter_ratios = [], [], []
        for design in designs:
            reference = spice_evaluator.evaluate(design)
            prediction = raw.evaluate(design)
            if reference.fmax > 0.0 and prediction.fmax > 0.0:
                freq_ratios.append(reference.fmax / prediction.fmax)
            if reference.current > 0.0 and prediction.current > 0.0:
                current_ratios.append(reference.current / prediction.current)
            if (
                math.isfinite(reference.jitter)
                and reference.jitter > 0.0
                and prediction.jitter > 0.0
            ):
                jitter_ratios.append(reference.jitter / prediction.jitter)

        def geometric_mean(ratios: Sequence[float], fallback: float) -> float:
            if not ratios:
                return fallback
            return math.exp(sum(math.log(r) for r in ratios) / len(ratios))

        return cls(
            technology=tech,
            vctrl_min=spice_evaluator.vctrl_min,
            vctrl_max=spice_evaluator.vctrl_max,
            n_stages=spice_evaluator.n_stages,
            frequency_scale=geometric_mean(freq_ratios, 0.42),
            current_scale=geometric_mean(current_ratios, 0.52),
            jitter_scale=geometric_mean(jitter_ratios, 3.0),
            **kwargs,
        )

    # -- device helpers --------------------------------------------------------------

    def _device(
        self,
        name: str,
        polarity: str,
        width: float,
        length: float,
        technology: Technology,
        mismatch: Optional[MismatchSample],
    ) -> MOSFET:
        model = technology.model(polarity)
        if mismatch is not None:
            deltas = mismatch.for_device(name)
            if deltas:
                updates = {}
                if "vth0" in deltas:
                    updates["vth0"] = model.vth0 + deltas["vth0"]
                if "u0_rel" in deltas:
                    updates["u0"] = model.u0 * (1.0 + deltas["u0_rel"])
                model = model.with_variation(**updates)
        return MOSFET(name, "d", "g", "s", "b", model, width, length)

    def _stage_bias(
        self,
        stage: int,
        design: VcoDesign,
        vctrl: float,
        technology: Technology,
        mismatch: Optional[MismatchSample],
    ) -> _StageBias:
        vdd = technology.vdd
        half = vdd / 2.0
        # NMOS starving transistor sets the discharge current.
        tail_n = self._device(
            f"mtn{stage}", "nmos", design.tail_nmos_width, design.tail_length, technology, mismatch
        )
        i_tail_n = tail_n.drain_current(half, vctrl, 0.0, 0.0)
        # The PMOS starving transistor mirrors the bias branch current.
        tail_p = self._device(
            f"mtp{stage}", "pmos", design.tail_pmos_width, design.tail_length, technology, mismatch
        )
        # Mirror bias: the diode-connected PMOS carries the bias-branch
        # current; assume the mirror output sits near |Vgs| of the diode.
        i_tail_p = abs(tail_p.drain_current(half, half - vdd + half, vdd, vdd))
        # The inverter devices limit the current if they are smaller than the tails.
        inv_n = self._device(
            f"mn{stage}", "nmos", design.nmos_width, design.nmos_length, technology, mismatch
        )
        i_inv_n = inv_n.drain_current(half, vdd, 0.0, 0.0)
        inv_p = self._device(
            f"mp{stage}", "pmos", design.pmos_width, design.pmos_length, technology, mismatch
        )
        i_inv_p = abs(inv_p.drain_current(half, 0.0 - 0.0, vdd, vdd))
        pull_down = min(i_tail_n, i_inv_n)
        pull_up = min(max(i_tail_p, 0.3 * i_tail_n), i_inv_p)
        current = 0.5 * (pull_down + pull_up)
        overdrive = max(vctrl - technology.nmos.vth0, 0.05)
        return _StageBias(
            current=max(current, 1e-9),
            load_capacitance=self._stage_capacitance(design, technology),
            overdrive=overdrive,
        )

    def _stage_capacitance(self, design: VcoDesign, technology: Technology) -> float:
        nmos = technology.nmos
        pmos = technology.pmos
        gate = nmos.cox * design.nmos_width * design.nmos_length
        gate += pmos.cox * design.pmos_width * design.pmos_length
        overlap = nmos.cgso * design.nmos_width + pmos.cgso * design.pmos_width
        junction = nmos.cj * design.nmos_width * nmos.drain_extension
        junction += pmos.cj * design.pmos_width * pmos.drain_extension
        junction += nmos.cj * design.tail_nmos_width * nmos.drain_extension * 0.5
        junction += pmos.cj * design.tail_pmos_width * pmos.drain_extension * 0.5
        return gate + overlap + junction + technology.stage_load_capacitance

    # -- frequency / current / jitter ---------------------------------------------------

    def _frequency(
        self,
        design: VcoDesign,
        vctrl: float,
        technology: Technology,
        mismatch: Optional[MismatchSample],
    ) -> float:
        delays = []
        for stage in range(self.n_stages):
            bias = self._stage_bias(stage, design, vctrl, technology, mismatch)
            # Each half period charges/discharges the load across ~Vdd/2.
            delays.append(bias.load_capacitance * (technology.vdd / 2.0) / bias.current)
        period = 2.0 * sum(delays)
        if period <= 0.0:
            return 0.0
        return self.frequency_scale / period

    def _supply_current(
        self,
        design: VcoDesign,
        vctrl: float,
        frequency: float,
        technology: Technology,
        mismatch: Optional[MismatchSample],
    ) -> float:
        biases = [
            self._stage_bias(stage, design, vctrl, technology, mismatch)
            for stage in range(self.n_stages)
        ]
        mean_current = sum(b.current for b in biases) / len(biases)
        c_total = sum(b.load_capacitance for b in biases)
        dynamic = c_total * technology.vdd * frequency
        # During each transition roughly one pull-up and one pull-down path
        # conduct simultaneously for a fraction of the period (crowbar).
        crowbar = 0.8 * mean_current
        bias_branch = mean_current  # the vctrl-to-vbp mirror branch
        return self.current_scale * (dynamic + crowbar + bias_branch)

    def _jitter(
        self,
        design: VcoDesign,
        vctrl: float,
        technology: Technology,
        mismatch: Optional[MismatchSample],
    ) -> float:
        biases = [
            self._stage_bias(stage, design, vctrl, technology, mismatch)
            for stage in range(self.n_stages)
        ]
        kT = _BOLTZMANN * technology.temperature
        # Thermal noise: per-edge first-crossing error accumulated over 2N edges.
        sigma_edges = []
        delays = []
        for bias in biases:
            sigma_v = math.sqrt(2.0 * kT / bias.load_capacitance)
            slope = bias.current / bias.load_capacitance
            sigma_edges.append(sigma_v / slope)
            delays.append(bias.load_capacitance * (technology.vdd / 2.0) / bias.current)
        thermal = math.sqrt(2.0 * sum(s * s for s in sigma_edges))
        # Mismatch between stages converts into deterministic period error
        # through the spread of the stage delays (one-sigma estimate).
        mean_delay = sum(delays) / len(delays)
        if len(delays) > 1:
            variance = sum((d - mean_delay) ** 2 for d in delays) / (len(delays) - 1)
            deterministic = math.sqrt(variance)
        else:
            deterministic = 0.0
        return self.jitter_scale * math.sqrt(thermal**2 + deterministic**2)

    # -- public API -----------------------------------------------------------------------

    def _finalise_performance(self, performance: VcoPerformance) -> VcoPerformance:
        """Topology-specific post-processing of one evaluated design point.

        The ring is the identity.  Subclasses (e.g. the pseudo-differential
        topology) apply their per-topology corrections here, once, so the
        scalar path, the vectorised path and the mixed-technology fallback
        (which loops :meth:`evaluate`) all agree bit-exactly.
        """
        return performance

    def evaluate(
        self,
        design: VcoDesign,
        technology: Optional[Technology] = None,
        mismatch: Optional[MismatchSample] = None,
    ) -> VcoPerformance:
        """Evaluate the five performances of one design point analytically."""
        tech = technology or self.technology
        design = design.clamped(tech)
        fmin = self._frequency(design, self.vctrl_min, tech, mismatch)
        fmax = self._frequency(design, self.vctrl_max, tech, mismatch)
        span = self.vctrl_max - self.vctrl_min
        kvco = max(fmax - fmin, 0.0) / span
        current = self._supply_current(design, self.vctrl_max, fmax, tech, mismatch)
        jitter = self._jitter(design, self.vctrl_max, tech, mismatch)
        return self._finalise_performance(
            VcoPerformance(kvco=kvco, jitter=jitter, current=current, fmin=fmin, fmax=fmax)
        )

    # -- vectorised batch evaluation ---------------------------------------------------

    def evaluate_batch(
        self,
        designs: Sequence[VcoDesign],
        technology: Optional[Technology] = None,
        technologies: Optional[Sequence[Technology]] = None,
        mismatches: Optional[Sequence[MismatchSample]] = None,
    ) -> List[VcoPerformance]:
        """True array-in/array-out evaluation of a whole batch.

        Every first-order expression of the scalar path is transcribed to
        numpy over the batch axis with the identical operation order, so
        the returned performances are bit-identical to calling
        :meth:`evaluate` per element -- a seeded NSGA-II run or Monte
        Carlo analysis produces the same results on either path, only
        faster.  Supports the two batch shapes of the flow: N designs
        under one technology (optimisation) and one design under N
        sampled technologies/mismatch draws (Monte Carlo).
        """
        base_tech = technology or self.technology
        designs_b, techs, mms = _broadcast_batch(designs, base_tech, technologies, mismatches)
        n = len(designs_b)
        EVALUATIONS.inc(n, backend="analytical")
        reference = techs[0]
        if any(
            tech.vdd != reference.vdd or tech.temperature != reference.temperature
            for tech in techs
        ):
            # Mixed supplies/temperatures would turn the scalar bias
            # branches into arrays; fall back to the generic loop.
            return super().evaluate_batch(
                designs, technology=base_tech, technologies=techs, mismatches=mms
            )
        params = self._design_arrays(designs_b, reference)
        nmos = _card_arrays([tech.nmos for tech in techs])
        pmos = _card_arrays([tech.pmos for tech in techs])
        load = self._batch_stage_capacitance(params, nmos, pmos, reference)
        has_mismatch = any(mm is not None and mm.deltas for mm in mms)

        def stage_biases(vctrl: float) -> List[np.ndarray]:
            if not has_mismatch:
                current = self._batch_stage_current(params, nmos, pmos, reference, vctrl, None, 0)
                return [current] * self.n_stages
            return [
                self._batch_stage_current(params, nmos, pmos, reference, vctrl, mms, stage)
                for stage in range(self.n_stages)
            ]

        def frequency(currents: List[np.ndarray]) -> np.ndarray:
            delays = [load * (reference.vdd / 2.0) / current for current in currents]
            period = 2.0 * sum(delays)
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.where(period > 0.0, self.frequency_scale / period, 0.0)

        currents_min = stage_biases(self.vctrl_min)
        currents_max = stage_biases(self.vctrl_max)
        fmin = frequency(currents_min)
        fmax = frequency(currents_max)
        span = self.vctrl_max - self.vctrl_min
        kvco = np.maximum(fmax - fmin, 0.0) / span
        # Supply current (same bias points as fmax, see _supply_current).
        mean_current = sum(currents_max) / len(currents_max)
        c_total = sum([load] * self.n_stages)
        dynamic = c_total * reference.vdd * fmax
        crowbar = 0.8 * mean_current
        bias_branch = mean_current
        current = self.current_scale * (dynamic + crowbar + bias_branch)
        # Jitter (thermal first-crossing noise + stage-delay spread).
        kT = _BOLTZMANN * reference.temperature
        sigma_edges = []
        delays = []
        for stage_current in currents_max:
            sigma_v = np.sqrt(2.0 * kT / load)
            slope = stage_current / load
            sigma_edges.append(sigma_v / slope)
            delays.append(load * (reference.vdd / 2.0) / stage_current)
        thermal = np.sqrt(2.0 * sum(s * s for s in sigma_edges))
        mean_delay = sum(delays) / len(delays)
        if len(delays) > 1:
            variance = sum((d - mean_delay) ** 2 for d in delays) / (len(delays) - 1)
            deterministic = np.sqrt(variance)
        else:
            deterministic = 0.0
        jitter = self.jitter_scale * np.sqrt(thermal**2 + deterministic**2)

        columns = [
            np.broadcast_to(np.asarray(column, dtype=float), (n,))
            for column in (kvco, jitter, current, fmin, fmax)
        ]
        return [
            self._finalise_performance(
                VcoPerformance(
                    kvco=float(columns[0][i]),
                    jitter=float(columns[1][i]),
                    current=float(columns[2][i]),
                    fmin=float(columns[3][i]),
                    fmax=float(columns[4][i]),
                )
            )
            for i in range(n)
        ]

    def _design_arrays(self, designs: Sequence[VcoDesign], technology: Technology) -> Dict:
        """Clamped design parameters as batch arrays (scalars when shared)."""
        names = self.design_cls.parameter_names()
        if all(design is designs[0] for design in designs):
            values = {name: getattr(designs[0], name) for name in names}
        else:
            values = {
                name: np.array([getattr(design, name) for design in designs])
                for name in names
            }
        for name in self._WIDTH_PARAMS:
            values[name] = np.clip(values[name], technology.min_width, technology.max_width)
        for name in self._LENGTH_PARAMS:
            values[name] = np.clip(values[name], technology.min_length, technology.max_length)
        return values

    def _batch_stage_capacitance(self, params, nmos, pmos, technology: Technology):
        """Vectorised transcription of :meth:`_stage_capacitance`."""
        cox_n = _EPS_OX / nmos["tox"]
        cox_p = _EPS_OX / pmos["tox"]
        gate = cox_n * params["nmos_width"] * params["nmos_length"]
        gate = gate + cox_p * params["pmos_width"] * params["pmos_length"]
        overlap = nmos["cgso"] * params["nmos_width"] + pmos["cgso"] * params["pmos_width"]
        junction = nmos["cj"] * params["nmos_width"] * nmos["drain_extension"]
        junction = junction + pmos["cj"] * params["pmos_width"] * pmos["drain_extension"]
        junction = junction + nmos["cj"] * params["tail_nmos_width"] * nmos["drain_extension"] * 0.5
        junction = junction + pmos["cj"] * params["tail_pmos_width"] * pmos["drain_extension"] * 0.5
        return gate + overlap + junction + technology.stage_load_capacitance

    def _batch_stage_current(
        self, params, nmos, pmos, technology: Technology, vctrl, mismatches, stage: int
    ) -> np.ndarray:
        """Vectorised transcription of the current part of :meth:`_stage_bias`."""
        vdd = technology.vdd
        half = vdd / 2.0
        tail_n = _device_arrays(
            nmos, params["tail_nmos_width"], params["tail_length"],
            _mismatch_deltas(mismatches, f"mtn{stage}"),
        )
        i_tail_n = tail_n.drain_current(half, vctrl, 0.0, 0.0)
        tail_p = _device_arrays(
            pmos, params["tail_pmos_width"], params["tail_length"],
            _mismatch_deltas(mismatches, f"mtp{stage}"),
        )
        i_tail_p = np.abs(tail_p.drain_current(half, half - vdd + half, vdd, vdd))
        inv_n = _device_arrays(
            nmos, params["nmos_width"], params["nmos_length"],
            _mismatch_deltas(mismatches, f"mn{stage}"),
        )
        i_inv_n = inv_n.drain_current(half, vdd, 0.0, 0.0)
        inv_p = _device_arrays(
            pmos, params["pmos_width"], params["pmos_length"],
            _mismatch_deltas(mismatches, f"mp{stage}"),
        )
        i_inv_p = np.abs(inv_p.drain_current(half, 0.0 - 0.0, vdd, vdd))
        pull_down = np.minimum(i_tail_n, i_inv_n)
        pull_up = np.minimum(np.maximum(i_tail_p, 0.3 * i_tail_n), i_inv_p)
        current = 0.5 * (pull_down + pull_up)
        return np.maximum(current, 1e-9)


# The worker-side evaluator is installed once per pool through the executor
# initializer (mirroring repro.optim.evaluation), so each task ships only
# one (design, technology, mismatch) triple instead of the whole evaluator.
_SPICE_WORKER_EVALUATOR: Optional["RingVcoSpiceEvaluator"] = None


def _initialise_spice_worker(evaluator: "RingVcoSpiceEvaluator") -> None:
    global _SPICE_WORKER_EVALUATOR
    _SPICE_WORKER_EVALUATOR = evaluator


def _evaluate_spice_in_worker(
    task: Tuple[VcoDesign, Technology, Optional[MismatchSample]],
) -> VcoPerformance:
    if _SPICE_WORKER_EVALUATOR is None:  # pragma: no cover - defensive
        raise RuntimeError("worker process was not initialised with an evaluator")
    design, technology, mismatch = task
    return _SPICE_WORKER_EVALUATOR.evaluate(
        design, technology=technology, mismatch=mismatch
    )


def _evaluate_spice_chunk_traced(
    payload: Tuple[
        Sequence[Tuple[VcoDesign, Technology, Optional[MismatchSample]]],
        Optional[dict],
        int,
    ],
) -> Tuple[List[VcoPerformance], List[dict]]:
    """Traced chunk evaluation inside a pool worker.

    The child process cannot see the parent's trace, so it records its
    chunk span into a throwaway trace (seeded from the shipped
    :func:`~repro.obs.trace.trace_context`) and returns the span records
    with the results; the parent merges them.  Evaluation itself is the
    same scalar :meth:`RingVcoSpiceEvaluator.evaluate` loop -- spans
    never touch the numbers.
    """
    tasks, context, chunk_index = payload
    if _SPICE_WORKER_EVALUATOR is None:  # pragma: no cover - defensive
        raise RuntimeError("worker process was not initialised with an evaluator")
    with obs_trace.collect_spans(context) as spans:
        with obs_trace.span("spice.chunk", chunk=chunk_index, n_tasks=len(tasks)):
            results = [_evaluate_spice_in_worker(task) for task in tasks]
    return results, spans


def _evaluate_spice_lanes_in_worker(
    tasks: Sequence[Tuple[VcoDesign, Technology, Optional[MismatchSample]]],
) -> List[VcoPerformance]:
    if _SPICE_WORKER_EVALUATOR is None:  # pragma: no cover - defensive
        raise RuntimeError("worker process was not initialised with an evaluator")
    return _SPICE_WORKER_EVALUATOR.evaluate_lane_chunk(tasks)


def _evaluate_spice_lanes_traced(
    payload: Tuple[
        Sequence[Tuple[VcoDesign, Technology, Optional[MismatchSample]]],
        Optional[dict],
        int,
    ],
) -> Tuple[List[VcoPerformance], List[dict]]:
    """Traced lane-chunk evaluation inside a pool worker (see above)."""
    tasks, context, chunk_index = payload
    with obs_trace.collect_spans(context) as spans:
        with obs_trace.span("spice.lane_chunk", chunk=chunk_index, n_tasks=len(tasks)):
            results = _evaluate_spice_lanes_in_worker(tasks)
    return results, spans


class RingVcoSpiceEvaluator(VcoEvaluator):
    """Transistor-level evaluator running the MNA test bench.

    Parameters
    ----------
    n_workers:
        Size of the process pool used by :meth:`evaluate_batch`; ``None``
        (the default) applies the same rule as the optimiser's ``process``
        backend (:func:`repro.optim.evaluation.default_worker_count`), and
        ``HierarchicalFlow(n_workers=...)`` fills it in when unset.
    engine:
        ``"reference"`` (per-element Python engine, byte-stable default),
        ``"compiled"`` (vectorised stamp plan per transient) or ``"lanes"``
        (compiled plus lane-parallel batching: :meth:`evaluate_batch`
        advances ``lane_width`` tasks per in-process batch, and chunks of
        lanes still fan out over the process pool).  The compiled engines
        are tolerance-equivalent to the reference, not byte-identical.
    lane_width:
        Number of (design, technology, mismatch) tasks simulated together
        per lane batch when ``engine="lanes"`` (each task contributes two
        transient lanes, one per control voltage).
    """

    #: Topology hooks (see :class:`RingVcoAnalyticalEvaluator`): subclasses
    #: swap the test-bench class and design space to reuse the pooled batch
    #: machinery for a different circuit.
    topology_name = "ring-vco"
    design_cls = VcoDesign
    testbench_cls = VcoTestbench

    def __init__(
        self,
        technology: Technology = TECH_012UM,
        vctrl_min: float = 0.5,
        vctrl_max: float | None = None,
        n_stages: int = N_STAGES,
        dt: float = 4e-12,
        sim_cycles: float = 8.0,
        n_workers: Optional[int] = None,
        engine: str = "reference",
        lane_width: int = 8,
    ) -> None:
        from repro.spice.plan import ENGINES

        if n_workers is not None and n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
        if lane_width < 1:
            raise ValueError("lane_width must be at least 1")
        self.technology = technology
        self.vctrl_min = vctrl_min
        self.vctrl_max = technology.vdd if vctrl_max is None else vctrl_max
        self.n_stages = n_stages
        self.dt = dt
        self.sim_cycles = sim_cycles
        self.n_workers = n_workers
        self.engine = engine
        self.lane_width = lane_width

    def _testbench(self, technology: Technology) -> VcoTestbench:
        return self.testbench_cls(
            technology=technology,
            vctrl_min=self.vctrl_min,
            vctrl_max=self.vctrl_max,
            n_stages=self.n_stages,
            dt=self.dt,
            sim_cycles=self.sim_cycles,
            engine=self.engine,
        )

    def evaluate(
        self,
        design: VcoDesign,
        technology: Optional[Technology] = None,
        mismatch: Optional[MismatchSample] = None,
    ) -> VcoPerformance:
        """Evaluate the five performances with transistor-level transients."""
        tech = technology or self.technology
        design = design.clamped(tech)
        overrides = None
        if mismatch is not None and mismatch.devices():
            overrides = {name: mismatch.for_device(name) for name in mismatch.devices()}
        return self._testbench(tech).run(design, device_overrides=overrides)

    def evaluate_batch(
        self,
        designs: Sequence[VcoDesign],
        technology: Optional[Technology] = None,
        technologies: Optional[Sequence[Technology]] = None,
        mismatches: Optional[Sequence[MismatchSample]] = None,
    ) -> List[VcoPerformance]:
        """Fan a batch of transistor-level evaluations out over a process pool.

        One MNA transient costs seconds of pure Python, so unlike the
        analytical evaluator the batch here parallelises across processes:
        the pool is initialised once with the (picklable) evaluator, the
        (design, technology, mismatch) triples are mapped in chunks, and
        order is preserved.  Every worker runs the exact same scalar
        :meth:`evaluate`, so the results are identical to the serial loop.
        Batches too small to amortise a pool (or ``n_workers=1``) fall back
        to the inherited serial loop.
        """
        designs_b, techs, mms = _broadcast_batch(
            designs, technology or self.technology, technologies, mismatches
        )
        tasks = list(zip(designs_b, techs, mms))
        n_tasks = len(tasks)
        EVALUATIONS.inc(n_tasks, backend=f"spice-{self.engine}")
        if self.engine == "lanes":
            return self._evaluate_batch_lanes(tasks)
        n_workers = min(self.pool_size(), n_tasks)
        if n_workers < 2 or n_tasks < 2:
            return [
                self.evaluate(design, technology=tech, mismatch=mismatch)
                for design, tech, mismatch in tasks
            ]
        with obs_trace.span(
            "spice.evaluate_batch", n_tasks=n_tasks, n_workers=n_workers
        ) as attrs:
            context = obs_trace.trace_context()
            chunksize = max(1, -(-n_tasks // (n_workers * 4)))
            with ProcessPoolExecutor(
                max_workers=n_workers,
                initializer=_initialise_spice_worker,
                initargs=(self,),
            ) as executor:
                if context is None:
                    return list(
                        executor.map(
                            _evaluate_spice_in_worker, tasks, chunksize=chunksize
                        )
                    )
                # Traced runs ship the chunks explicitly so each pool
                # worker can hand its chunk span back with the results.
                chunks = [
                    tasks[start : start + chunksize]
                    for start in range(0, n_tasks, chunksize)
                ]
                if attrs is not None:
                    attrs["n_chunks"] = len(chunks)
                results: List[VcoPerformance] = []
                for chunk_results, spans in executor.map(
                    _evaluate_spice_chunk_traced,
                    [(chunk, context, index) for index, chunk in enumerate(chunks)],
                ):
                    results.extend(chunk_results)
                    obs_trace.merge_spans(spans)
                return results

    def evaluate_lane_chunk(
        self, tasks: Sequence[Tuple[VcoDesign, Technology, Optional[MismatchSample]]]
    ) -> List[VcoPerformance]:
        """Evaluate one chunk of tasks through the lane-parallel test bench."""
        prepared = []
        for design, technology, mismatch in tasks:
            tech = technology or self.technology
            design = design.clamped(tech)
            overrides = None
            if mismatch is not None and mismatch.devices():
                overrides = {name: mismatch.for_device(name) for name in mismatch.devices()}
            prepared.append((design, tech, overrides))
        return self._testbench(self.technology).run_batch(prepared)

    def _evaluate_batch_lanes(
        self, tasks: List[Tuple[VcoDesign, Technology, Optional[MismatchSample]]]
    ) -> List[VcoPerformance]:
        """Lane-parallel batch path: in-process lane batches, pooled chunks.

        The batch is cut into ``lane_width``-sized chunks; each chunk is one
        :meth:`VcoTestbench.run_batch` call (a single lane-parallel
        transient).  When there are several chunks and more than one worker
        the chunks fan out over the existing process pool, composing the
        two levels of parallelism (vectorised lanes inside a process, pool
        across processes).
        """
        chunks = [
            tasks[start : start + self.lane_width]
            for start in range(0, len(tasks), self.lane_width)
        ]
        n_workers = min(self.pool_size(), len(chunks))
        if n_workers < 2 or len(chunks) < 2:
            results: List[VcoPerformance] = []
            for chunk in chunks:
                results.extend(self.evaluate_lane_chunk(chunk))
            return results
        with obs_trace.span(
            "spice.evaluate_batch",
            n_tasks=len(tasks),
            n_workers=n_workers,
            n_chunks=len(chunks),
        ):
            context = obs_trace.trace_context()
            with ProcessPoolExecutor(
                max_workers=n_workers,
                initializer=_initialise_spice_worker,
                initargs=(self,),
            ) as executor:
                results = []
                if context is None:
                    for chunk_result in executor.map(
                        _evaluate_spice_lanes_in_worker, chunks
                    ):
                        results.extend(chunk_result)
                    return results
                for chunk_result, spans in executor.map(
                    _evaluate_spice_lanes_traced,
                    [(chunk, context, index) for index, chunk in enumerate(chunks)],
                ):
                    results.extend(chunk_result)
                    obs_trace.merge_spans(spans)
                return results

    def pool_size(self) -> int:
        """Worker count of the batch pool (configured or the shared default)."""
        if self.n_workers is not None:
            return self.n_workers
        from repro.optim.evaluation import default_worker_count

        return default_worker_count()
