"""VCO performance evaluators.

Two evaluators implement the same interface (:class:`VcoEvaluator`):

* :class:`RingVcoSpiceEvaluator` runs the transistor-level test bench of
  :mod:`repro.circuits.testbench` on the MNA engine.  It is the
  ground-truth engine used for bottom-up verification and spot checks, but
  a single evaluation costs a few seconds of pure-Python transient
  simulation.

* :class:`RingVcoAnalyticalEvaluator` computes the same five performances
  from first-order device physics (starving current from the shared MOSFET
  model equations, delay = C V / I, thermal-noise jitter, dynamic +
  crowbar supply current).  One evaluation costs microseconds, which makes
  the paper's 3,000-sample NSGA-II run and the per-Pareto-point Monte Carlo
  analysis laptop-scale.  Its calibration factors were fitted against the
  SPICE evaluator so that both engines agree on trends and roughly on
  magnitude (see ``examples/vco_characterisation.py`` and the unit tests).

Both evaluators accept a technology override and a mismatch sample, which
is how the Monte Carlo engine injects global process variation and local
device mismatch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence

from repro.circuits.performance import VcoPerformance
from repro.circuits.ring_vco import N_STAGES, VcoDesign, vco_device_geometries
from repro.circuits.testbench import VcoTestbench
from repro.process.mismatch import MismatchSample
from repro.process.technology import TECH_012UM, Technology
from repro.spice.mosfet import MOSFET

__all__ = ["VcoEvaluator", "RingVcoAnalyticalEvaluator", "RingVcoSpiceEvaluator"]

_BOLTZMANN = 1.380649e-23


class VcoEvaluator:
    """Interface shared by the analytical and the SPICE evaluator."""

    technology: Technology

    def evaluate(
        self,
        design: VcoDesign,
        technology: Optional[Technology] = None,
        mismatch: Optional[MismatchSample] = None,
    ) -> VcoPerformance:
        """Evaluate the five performances of one design point."""
        raise NotImplementedError

    def monte_carlo_evaluator(
        self, design: VcoDesign
    ) -> Callable[[Technology, MismatchSample], Dict[str, float]]:
        """Adapter with the signature expected by the Monte Carlo engine."""

        def _evaluate(technology: Technology, mismatch: MismatchSample) -> Dict[str, float]:
            return self.evaluate(design, technology=technology, mismatch=mismatch).as_dict()

        return _evaluate


@dataclass
class _StageBias:
    """Starving current and effective load of one inverter stage."""

    current: float
    load_capacitance: float
    overdrive: float


class RingVcoAnalyticalEvaluator(VcoEvaluator):
    """Calibrated first-order performance model of the current-starved ring VCO.

    Parameters
    ----------
    technology:
        Nominal process description.
    vctrl_min / vctrl_max:
        Control-voltage window over which gain and tuning range are defined
        (matches the SPICE test bench defaults).
    frequency_scale / current_scale / jitter_scale:
        Calibration factors multiplying the first-order expressions.  The
        defaults (0.42 / 0.52 / 3.0) were fitted against
        :class:`RingVcoSpiceEvaluator` on the default design point so both
        engines agree on magnitude; trends with respect to the designable
        parameters agree by construction because both use the same device
        equations.  Use :meth:`calibrate` to re-fit for a different
        technology.
    """

    def __init__(
        self,
        technology: Technology = TECH_012UM,
        vctrl_min: float = 0.5,
        vctrl_max: float | None = None,
        n_stages: int = N_STAGES,
        frequency_scale: float = 0.42,
        current_scale: float = 0.52,
        jitter_scale: float = 3.0,
    ) -> None:
        self.technology = technology
        self.vctrl_min = vctrl_min
        self.vctrl_max = technology.vdd if vctrl_max is None else vctrl_max
        self.n_stages = n_stages
        self.frequency_scale = frequency_scale
        self.current_scale = current_scale
        self.jitter_scale = jitter_scale

    # -- calibration -----------------------------------------------------------------

    @classmethod
    def calibrate(
        cls,
        spice_evaluator: "RingVcoSpiceEvaluator",
        designs: Sequence[VcoDesign],
        technology: Optional[Technology] = None,
        **kwargs,
    ) -> "RingVcoAnalyticalEvaluator":
        """Fit the calibration factors against the transistor-level evaluator.

        The scale factors are the geometric-mean ratios of the SPICE
        measurements to the uncalibrated analytical predictions over the
        given design sample.  This is how the default factors were obtained.
        """
        if not designs:
            raise ValueError("calibration needs at least one design point")
        tech = technology or spice_evaluator.technology
        raw = cls(
            technology=tech,
            vctrl_min=spice_evaluator.vctrl_min,
            vctrl_max=spice_evaluator.vctrl_max,
            n_stages=spice_evaluator.n_stages,
            frequency_scale=1.0,
            current_scale=1.0,
            jitter_scale=1.0,
        )
        freq_ratios, current_ratios, jitter_ratios = [], [], []
        for design in designs:
            reference = spice_evaluator.evaluate(design)
            prediction = raw.evaluate(design)
            if reference.fmax > 0.0 and prediction.fmax > 0.0:
                freq_ratios.append(reference.fmax / prediction.fmax)
            if reference.current > 0.0 and prediction.current > 0.0:
                current_ratios.append(reference.current / prediction.current)
            if (
                math.isfinite(reference.jitter)
                and reference.jitter > 0.0
                and prediction.jitter > 0.0
            ):
                jitter_ratios.append(reference.jitter / prediction.jitter)

        def geometric_mean(ratios: Sequence[float], fallback: float) -> float:
            if not ratios:
                return fallback
            return math.exp(sum(math.log(r) for r in ratios) / len(ratios))

        return cls(
            technology=tech,
            vctrl_min=spice_evaluator.vctrl_min,
            vctrl_max=spice_evaluator.vctrl_max,
            n_stages=spice_evaluator.n_stages,
            frequency_scale=geometric_mean(freq_ratios, 0.42),
            current_scale=geometric_mean(current_ratios, 0.52),
            jitter_scale=geometric_mean(jitter_ratios, 3.0),
            **kwargs,
        )

    # -- device helpers --------------------------------------------------------------

    def _device(
        self,
        name: str,
        polarity: str,
        width: float,
        length: float,
        technology: Technology,
        mismatch: Optional[MismatchSample],
    ) -> MOSFET:
        model = technology.model(polarity)
        if mismatch is not None:
            deltas = mismatch.for_device(name)
            if deltas:
                updates = {}
                if "vth0" in deltas:
                    updates["vth0"] = model.vth0 + deltas["vth0"]
                if "u0_rel" in deltas:
                    updates["u0"] = model.u0 * (1.0 + deltas["u0_rel"])
                model = model.with_variation(**updates)
        return MOSFET(name, "d", "g", "s", "b", model, width, length)

    def _stage_bias(
        self,
        stage: int,
        design: VcoDesign,
        vctrl: float,
        technology: Technology,
        mismatch: Optional[MismatchSample],
    ) -> _StageBias:
        vdd = technology.vdd
        half = vdd / 2.0
        # NMOS starving transistor sets the discharge current.
        tail_n = self._device(
            f"mtn{stage}", "nmos", design.tail_nmos_width, design.tail_length, technology, mismatch
        )
        i_tail_n = tail_n.drain_current(half, vctrl, 0.0, 0.0)
        # The PMOS starving transistor mirrors the bias branch current.
        tail_p = self._device(
            f"mtp{stage}", "pmos", design.tail_pmos_width, design.tail_length, technology, mismatch
        )
        # Mirror bias: the diode-connected PMOS carries the bias-branch
        # current; assume the mirror output sits near |Vgs| of the diode.
        i_tail_p = abs(tail_p.drain_current(half, half - vdd + half, vdd, vdd))
        # The inverter devices limit the current if they are smaller than the tails.
        inv_n = self._device(
            f"mn{stage}", "nmos", design.nmos_width, design.nmos_length, technology, mismatch
        )
        i_inv_n = inv_n.drain_current(half, vdd, 0.0, 0.0)
        inv_p = self._device(
            f"mp{stage}", "pmos", design.pmos_width, design.pmos_length, technology, mismatch
        )
        i_inv_p = abs(inv_p.drain_current(half, 0.0 - 0.0, vdd, vdd))
        pull_down = min(i_tail_n, i_inv_n)
        pull_up = min(max(i_tail_p, 0.3 * i_tail_n), i_inv_p)
        current = 0.5 * (pull_down + pull_up)
        overdrive = max(vctrl - technology.nmos.vth0, 0.05)
        return _StageBias(
            current=max(current, 1e-9),
            load_capacitance=self._stage_capacitance(design, technology),
            overdrive=overdrive,
        )

    def _stage_capacitance(self, design: VcoDesign, technology: Technology) -> float:
        nmos = technology.nmos
        pmos = technology.pmos
        gate = nmos.cox * design.nmos_width * design.nmos_length
        gate += pmos.cox * design.pmos_width * design.pmos_length
        overlap = nmos.cgso * design.nmos_width + pmos.cgso * design.pmos_width
        junction = nmos.cj * design.nmos_width * nmos.drain_extension
        junction += pmos.cj * design.pmos_width * pmos.drain_extension
        junction += nmos.cj * design.tail_nmos_width * nmos.drain_extension * 0.5
        junction += pmos.cj * design.tail_pmos_width * pmos.drain_extension * 0.5
        return gate + overlap + junction + technology.stage_load_capacitance

    # -- frequency / current / jitter ---------------------------------------------------

    def _frequency(
        self,
        design: VcoDesign,
        vctrl: float,
        technology: Technology,
        mismatch: Optional[MismatchSample],
    ) -> float:
        delays = []
        for stage in range(self.n_stages):
            bias = self._stage_bias(stage, design, vctrl, technology, mismatch)
            # Each half period charges/discharges the load across ~Vdd/2.
            delays.append(bias.load_capacitance * (technology.vdd / 2.0) / bias.current)
        period = 2.0 * sum(delays)
        if period <= 0.0:
            return 0.0
        return self.frequency_scale / period

    def _supply_current(
        self,
        design: VcoDesign,
        vctrl: float,
        frequency: float,
        technology: Technology,
        mismatch: Optional[MismatchSample],
    ) -> float:
        biases = [
            self._stage_bias(stage, design, vctrl, technology, mismatch)
            for stage in range(self.n_stages)
        ]
        mean_current = sum(b.current for b in biases) / len(biases)
        c_total = sum(b.load_capacitance for b in biases)
        dynamic = c_total * technology.vdd * frequency
        # During each transition roughly one pull-up and one pull-down path
        # conduct simultaneously for a fraction of the period (crowbar).
        crowbar = 0.8 * mean_current
        bias_branch = mean_current  # the vctrl-to-vbp mirror branch
        return self.current_scale * (dynamic + crowbar + bias_branch)

    def _jitter(
        self,
        design: VcoDesign,
        vctrl: float,
        technology: Technology,
        mismatch: Optional[MismatchSample],
    ) -> float:
        biases = [
            self._stage_bias(stage, design, vctrl, technology, mismatch)
            for stage in range(self.n_stages)
        ]
        kT = _BOLTZMANN * technology.temperature
        # Thermal noise: per-edge first-crossing error accumulated over 2N edges.
        sigma_edges = []
        delays = []
        for bias in biases:
            sigma_v = math.sqrt(2.0 * kT / bias.load_capacitance)
            slope = bias.current / bias.load_capacitance
            sigma_edges.append(sigma_v / slope)
            delays.append(bias.load_capacitance * (technology.vdd / 2.0) / bias.current)
        thermal = math.sqrt(2.0 * sum(s * s for s in sigma_edges))
        # Mismatch between stages converts into deterministic period error
        # through the spread of the stage delays (one-sigma estimate).
        mean_delay = sum(delays) / len(delays)
        if len(delays) > 1:
            variance = sum((d - mean_delay) ** 2 for d in delays) / (len(delays) - 1)
            deterministic = math.sqrt(variance)
        else:
            deterministic = 0.0
        return self.jitter_scale * math.sqrt(thermal**2 + deterministic**2)

    # -- public API -----------------------------------------------------------------------

    def evaluate(
        self,
        design: VcoDesign,
        technology: Optional[Technology] = None,
        mismatch: Optional[MismatchSample] = None,
    ) -> VcoPerformance:
        """Evaluate the five performances of one design point analytically."""
        tech = technology or self.technology
        design = design.clamped(tech)
        fmin = self._frequency(design, self.vctrl_min, tech, mismatch)
        fmax = self._frequency(design, self.vctrl_max, tech, mismatch)
        span = self.vctrl_max - self.vctrl_min
        kvco = max(fmax - fmin, 0.0) / span
        current = self._supply_current(design, self.vctrl_max, fmax, tech, mismatch)
        jitter = self._jitter(design, self.vctrl_max, tech, mismatch)
        return VcoPerformance(kvco=kvco, jitter=jitter, current=current, fmin=fmin, fmax=fmax)


class RingVcoSpiceEvaluator(VcoEvaluator):
    """Transistor-level evaluator running the MNA test bench."""

    def __init__(
        self,
        technology: Technology = TECH_012UM,
        vctrl_min: float = 0.5,
        vctrl_max: float | None = None,
        n_stages: int = N_STAGES,
        dt: float = 4e-12,
        sim_cycles: float = 8.0,
    ) -> None:
        self.technology = technology
        self.vctrl_min = vctrl_min
        self.vctrl_max = technology.vdd if vctrl_max is None else vctrl_max
        self.n_stages = n_stages
        self.dt = dt
        self.sim_cycles = sim_cycles

    def _testbench(self, technology: Technology) -> VcoTestbench:
        return VcoTestbench(
            technology=technology,
            vctrl_min=self.vctrl_min,
            vctrl_max=self.vctrl_max,
            n_stages=self.n_stages,
            dt=self.dt,
            sim_cycles=self.sim_cycles,
        )

    def evaluate(
        self,
        design: VcoDesign,
        technology: Optional[Technology] = None,
        mismatch: Optional[MismatchSample] = None,
    ) -> VcoPerformance:
        """Evaluate the five performances with transistor-level transients."""
        tech = technology or self.technology
        design = design.clamped(tech)
        overrides = None
        if mismatch is not None and mismatch.devices():
            overrides = {name: mismatch.for_device(name) for name in mismatch.devices()}
        return self._testbench(tech).run(design, device_overrides=overrides)
