"""Pseudo-differential multi-phase VCO (the second registered topology).

Two identical current-starved rings (``a`` and ``b``) share one bias
mirror and are locked in anti-phase by a weak cross-coupled keeper
inverter pair between every output pair ``(a_j, b_j)``: the keeper from
``b_j`` drives ``a_j`` and vice versa, so the latch forces the two rings
180 degrees apart and the oscillator provides ``2 N`` evenly spaced
phases instead of ``N``.  This is the classic pseudo-differential
multi-phase arrangement (cf. ordec's ``vco_pseudodiff`` demo) and the
first non-ring demonstrator of the hierarchical flow: everything above
the :mod:`repro.circuits.topology` seam -- model build, system NSGA-II,
yield analysis, bottom-up SPICE verification -- runs unchanged.

The design space is the ring's seven parameters plus ``cross_width``,
the keeper NMOS width (the keeper PMOS is twice as wide, the usual 2:1
mobility ratio).  Ring ``a`` reuses the ring topology's device names
(``mn0`` ...), so the analytical stage-bias model and the mismatch
machinery apply verbatim to one ring; the ``b`` ring and the keepers get
suffixed names and their own mismatch geometries for the transistor-level
Monte Carlo.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Dict, List, Optional

from repro.circuits.evaluators import (
    RingVcoAnalyticalEvaluator,
    RingVcoSpiceEvaluator,
)
from repro.circuits.performance import VcoPerformance
from repro.circuits.testbench import VcoTestbench
from repro.optim.problem import Parameter
from repro.process.mismatch import DeviceGeometry
from repro.process.technology import TECH_012UM, Technology
from repro.spice.elements import Capacitor, VoltageSource
from repro.spice.mosfet import MOSFET
from repro.spice.netlist import Circuit

__all__ = [
    "PseudoDiffVcoDesign",
    "build_pseudodiff_vco",
    "pseudodiff_device_geometries",
    "PseudoDiffAnalyticalEvaluator",
    "PseudoDiffSpiceEvaluator",
    "PseudoDiffTestbench",
]

_SQRT2 = math.sqrt(2.0)

#: Keeper channel-length multiplier.  The keepers must be weak enough not
#: to pin the starved rings at the low end of the control-voltage window
#: (a full-strength latch wins against the starving current and kills the
#: oscillation); stretching their channels 4x keeps the latch action while
#: restoring oscillation across the whole vctrl window.
_KEEPER_LENGTH_FACTOR = 4.0


@dataclass(frozen=True)
class PseudoDiffVcoDesign:
    """Designable parameters of the pseudo-differential VCO (metres).

    The first seven mirror :class:`~repro.circuits.ring_vco.VcoDesign`
    (both rings are sized identically); ``cross_width`` sizes the
    cross-coupled keeper inverters that lock the rings in anti-phase.
    """

    nmos_width: float = 30e-6
    nmos_length: float = 0.24e-6
    pmos_width: float = 60e-6
    pmos_length: float = 0.24e-6
    tail_nmos_width: float = 40e-6
    tail_pmos_width: float = 80e-6
    tail_length: float = 0.24e-6
    cross_width: float = 12e-6

    def __post_init__(self) -> None:
        for item in fields(self):
            value = getattr(self, item.name)
            if value <= 0.0:
                raise ValueError(
                    f"pseudo-differential VCO design parameter {item.name!r} must be positive"
                )

    # -- conversions ----------------------------------------------------------------

    def as_dict(self) -> Dict[str, float]:
        """Parameter name -> value mapping (metres)."""
        return {item.name: float(getattr(self, item.name)) for item in fields(self)}

    @classmethod
    def from_dict(cls, values: Dict[str, float]) -> "PseudoDiffVcoDesign":
        """Build a design point from a name -> value mapping."""
        names = {item.name for item in fields(cls)}
        unknown = set(values) - names
        if unknown:
            raise KeyError(
                f"unknown pseudo-differential VCO design parameter(s): {sorted(unknown)}"
            )
        return cls(**{name: float(values[name]) for name in names if name in values})

    @classmethod
    def parameter_names(cls) -> List[str]:
        """The designable parameter names, in declaration order."""
        return [item.name for item in fields(cls)]

    @classmethod
    def optimisation_parameters(cls, technology: Technology = TECH_012UM) -> List[Parameter]:
        """Designable parameters with the technology's design-rule bounds."""
        w_lo, w_hi = technology.min_width, technology.max_width
        l_lo, l_hi = technology.min_length, technology.max_length
        bounds = {
            "nmos_width": (w_lo, w_hi),
            "nmos_length": (l_lo, l_hi),
            "pmos_width": (w_lo, w_hi),
            "pmos_length": (l_lo, l_hi),
            "tail_nmos_width": (w_lo, w_hi),
            "tail_pmos_width": (w_lo, w_hi),
            "tail_length": (l_lo, l_hi),
            "cross_width": (w_lo, w_hi),
        }
        return [
            Parameter(name, lower, upper, unit="m") for name, (lower, upper) in bounds.items()
        ]

    def clamped(self, technology: Technology = TECH_012UM) -> "PseudoDiffVcoDesign":
        """Return a copy with every parameter clamped into the design rules."""
        values = self.as_dict()
        for name in (
            "nmos_width",
            "pmos_width",
            "tail_nmos_width",
            "tail_pmos_width",
            "cross_width",
        ):
            values[name] = technology.clamp_width(values[name])
        for name in ("nmos_length", "pmos_length", "tail_length"):
            values[name] = technology.clamp_length(values[name])
        return PseudoDiffVcoDesign.from_dict(values)


def pseudodiff_device_geometries(
    design: PseudoDiffVcoDesign, n_stages: int = 5
) -> List[DeviceGeometry]:
    """Geometries of every matched transistor (for the mismatch model).

    Ring ``a`` keeps the ring topology's device names so the analytical
    evaluator's per-stage mismatch lookups apply unchanged; ring ``b``
    and the keepers use suffixed names matching
    :func:`build_pseudodiff_vco`.
    """
    geometries: List[DeviceGeometry] = []
    for stage in range(n_stages):
        geometries.extend(
            [
                DeviceGeometry(f"mp{stage}", design.pmos_width, design.pmos_length, "pmos"),
                DeviceGeometry(f"mn{stage}", design.nmos_width, design.nmos_length, "nmos"),
                DeviceGeometry(
                    f"mtp{stage}", design.tail_pmos_width, design.tail_length, "pmos"
                ),
                DeviceGeometry(
                    f"mtn{stage}", design.tail_nmos_width, design.tail_length, "nmos"
                ),
                DeviceGeometry(f"mpb{stage}", design.pmos_width, design.pmos_length, "pmos"),
                DeviceGeometry(f"mnb{stage}", design.nmos_width, design.nmos_length, "nmos"),
                DeviceGeometry(
                    f"mtpb{stage}", design.tail_pmos_width, design.tail_length, "pmos"
                ),
                DeviceGeometry(
                    f"mtnb{stage}", design.tail_nmos_width, design.tail_length, "nmos"
                ),
                DeviceGeometry(
                    f"mkpa{stage}",
                    2.0 * design.cross_width,
                    _KEEPER_LENGTH_FACTOR * design.pmos_length,
                    "pmos",
                ),
                DeviceGeometry(
                    f"mkna{stage}",
                    design.cross_width,
                    _KEEPER_LENGTH_FACTOR * design.nmos_length,
                    "nmos",
                ),
                DeviceGeometry(
                    f"mkpb{stage}",
                    2.0 * design.cross_width,
                    _KEEPER_LENGTH_FACTOR * design.pmos_length,
                    "pmos",
                ),
                DeviceGeometry(
                    f"mknb{stage}",
                    design.cross_width,
                    _KEEPER_LENGTH_FACTOR * design.nmos_length,
                    "nmos",
                ),
            ]
        )
    geometries.append(DeviceGeometry("mbn", design.tail_nmos_width, design.tail_length, "nmos"))
    geometries.append(DeviceGeometry("mbp", design.tail_pmos_width, design.tail_length, "pmos"))
    return geometries


def build_pseudodiff_vco(
    design: PseudoDiffVcoDesign,
    technology: Technology = TECH_012UM,
    vctrl: float = 0.8,
    n_stages: int = 5,
    extra_load: float | None = None,
    device_overrides: Dict[str, Dict[str, float]] | None = None,
) -> Circuit:
    """Transistor-level netlist of the pseudo-differential multi-phase VCO.

    Two ``n_stages``-stage current-starved rings with outputs ``a0..`` and
    ``b0..`` share one bias mirror; a weak cross-coupled inverter pair per
    stage latches ``a_j`` and ``b_j`` in anti-phase, yielding ``2 n_stages``
    phases.
    """
    if n_stages < 3 or n_stages % 2 == 0:
        raise ValueError(
            "a pseudo-differential ring pair needs an odd number of stages >= 3 per ring"
        )
    overrides = device_overrides or {}
    load = technology.stage_load_capacitance if extra_load is None else float(extra_load)

    def model_for(device_name: str, polarity: str):
        base = technology.model(polarity)
        deltas = overrides.get(device_name)
        if not deltas:
            return base
        updates = {}
        for key, delta in deltas.items():
            if key == "u0_rel":
                updates["u0"] = base.u0 * (1.0 + delta)
            elif hasattr(base, key):
                updates[key] = getattr(base, key) + delta
        return base.with_variation(**updates) if updates else base

    circuit = Circuit(f"pseudodiff_vco_{n_stages}stage")
    circuit.add(VoltageSource("vdd", "vdd", "0", technology.vdd))
    circuit.add(VoltageSource("vc", "vctrl", "0", vctrl))
    # Shared bias mirror (identical to the single ring).
    circuit.add(
        MOSFET(
            "mbn",
            "vbp",
            "vctrl",
            "0",
            "0",
            model_for("mbn", "nmos"),
            design.tail_nmos_width,
            design.tail_length,
        )
    )
    circuit.add(
        MOSFET(
            "mbp",
            "vbp",
            "vbp",
            "vdd",
            "vdd",
            model_for("mbp", "pmos"),
            design.tail_pmos_width,
            design.tail_length,
        )
    )

    def add_ring(prefix: str, suffix: str) -> None:
        for stage in range(n_stages):
            node_in = f"{prefix}{stage}"
            node_out = f"{prefix}{(stage + 1) % n_stages}"
            node_top = f"sp{suffix}{stage}"
            node_bot = f"sn{suffix}{stage}"
            circuit.add(
                MOSFET(
                    f"mtp{suffix}{stage}",
                    node_top,
                    "vbp",
                    "vdd",
                    "vdd",
                    model_for(f"mtp{suffix}{stage}", "pmos"),
                    design.tail_pmos_width,
                    design.tail_length,
                )
            )
            circuit.add(
                MOSFET(
                    f"mp{suffix}{stage}",
                    node_out,
                    node_in,
                    node_top,
                    "vdd",
                    model_for(f"mp{suffix}{stage}", "pmos"),
                    design.pmos_width,
                    design.pmos_length,
                )
            )
            circuit.add(
                MOSFET(
                    f"mn{suffix}{stage}",
                    node_out,
                    node_in,
                    node_bot,
                    "0",
                    model_for(f"mn{suffix}{stage}", "nmos"),
                    design.nmos_width,
                    design.nmos_length,
                )
            )
            circuit.add(
                MOSFET(
                    f"mtn{suffix}{stage}",
                    node_bot,
                    "vctrl",
                    "0",
                    "0",
                    model_for(f"mtn{suffix}{stage}", "nmos"),
                    design.tail_nmos_width,
                    design.tail_length,
                )
            )
            circuit.add(Capacitor(f"cl{suffix or 'a'}{stage}", node_out, "0", load))

    # Ring "a" keeps the plain ring device names (mn0, mtp0, ...); ring "b"
    # is suffixed.  This mirrors the mismatch geometry naming above.
    add_ring("a", "")
    add_ring("b", "b")

    # Cross-coupled keeper inverters: b_j drives a_j and a_j drives b_j,
    # latching the rings in anti-phase.
    for stage in range(n_stages):
        node_a = f"a{stage}"
        node_b = f"b{stage}"
        circuit.add(
            MOSFET(
                f"mkpa{stage}",
                node_a,
                node_b,
                "vdd",
                "vdd",
                model_for(f"mkpa{stage}", "pmos"),
                2.0 * design.cross_width,
                _KEEPER_LENGTH_FACTOR * design.pmos_length,
            )
        )
        circuit.add(
            MOSFET(
                f"mkna{stage}",
                node_a,
                node_b,
                "0",
                "0",
                model_for(f"mkna{stage}", "nmos"),
                design.cross_width,
                _KEEPER_LENGTH_FACTOR * design.nmos_length,
            )
        )
        circuit.add(
            MOSFET(
                f"mkpb{stage}",
                node_b,
                node_a,
                "vdd",
                "vdd",
                model_for(f"mkpb{stage}", "pmos"),
                2.0 * design.cross_width,
                _KEEPER_LENGTH_FACTOR * design.pmos_length,
            )
        )
        circuit.add(
            MOSFET(
                f"mknb{stage}",
                node_b,
                node_a,
                "0",
                "0",
                model_for(f"mknb{stage}", "nmos"),
                design.cross_width,
                _KEEPER_LENGTH_FACTOR * design.nmos_length,
            )
        )
    return circuit


class PseudoDiffTestbench(VcoTestbench):
    """MNA test bench of the pseudo-differential VCO.

    Reuses the ring bench's measurement loop through the ``_build_circuit``
    /``measure_node`` seam; the kick seeds the two rings with complementary
    initial conditions so the anti-phase latch settles immediately.
    """

    measure_node = "a0"

    def _build_circuit(
        self,
        design: PseudoDiffVcoDesign,
        technology: Technology,
        vctrl: float,
        device_overrides: Optional[Dict[str, Dict[str, float]]] = None,
    ) -> Circuit:
        return build_pseudodiff_vco(
            design,
            technology,
            vctrl=vctrl,
            n_stages=self.n_stages,
            device_overrides=device_overrides,
        )

    def _kick_conditions(self, vdd: float) -> Dict[str, float]:
        # Complementary kicks: ring "b" starts as the inverse of ring "a",
        # matching the anti-phase operating point of the keeper latch.
        initial: Dict[str, float] = {}
        for stage in range(self.n_stages):
            high = vdd if stage % 2 == 0 else 0.0
            initial[f"a{stage}"] = high
            initial[f"b{stage}"] = vdd - high
        initial[f"a{self.n_stages - 1}"] = vdd / 2.0
        initial[f"b{self.n_stages - 1}"] = vdd / 2.0
        return initial

    def _stage_capacitance(
        self, design: PseudoDiffVcoDesign, technology: Optional[Technology] = None
    ) -> float:
        tech = technology or self.technology
        base = super()._stage_capacitance(design, tech)
        return base + _keeper_capacitance(design, tech)

    def estimate_jitter(
        self,
        design: PseudoDiffVcoDesign,
        frequency: float,
        supply_current: float,
        technology: Optional[Technology] = None,
    ) -> float:
        # The measured supply current feeds both rings; each edge is driven
        # by one ring's share, and averaging the differential pair divides
        # the period jitter by sqrt(2).
        single = super().estimate_jitter(
            design, frequency, supply_current / 2.0, technology=technology
        )
        if not math.isfinite(single):
            return single
        return single / _SQRT2


def _keeper_capacitance(design: PseudoDiffVcoDesign, technology: Technology) -> float:
    """Gate + junction load one keeper inverter pair adds to a stage output."""
    nmos = technology.nmos
    pmos = technology.pmos
    keeper = nmos.cox * design.cross_width * (_KEEPER_LENGTH_FACTOR * design.nmos_length)
    keeper += pmos.cox * (2.0 * design.cross_width) * (
        _KEEPER_LENGTH_FACTOR * design.pmos_length
    )
    keeper += nmos.cj * design.cross_width * nmos.drain_extension
    keeper += pmos.cj * (2.0 * design.cross_width) * pmos.drain_extension
    return keeper


class PseudoDiffAnalyticalEvaluator(RingVcoAnalyticalEvaluator):
    """First-order performance model of the pseudo-differential VCO.

    One ring's stage-bias model applies verbatim (ring ``a`` reuses the
    ring device names); the keeper loading enters through the stage
    capacitance, and :meth:`_finalise_performance` applies the
    pseudo-differential corrections -- both rings draw supply current,
    and averaging the anti-phase pair improves jitter by ``sqrt(2)``.
    """

    topology_name = "pseudodiff-vco"
    design_cls = PseudoDiffVcoDesign
    _WIDTH_PARAMS = (
        "nmos_width",
        "pmos_width",
        "tail_nmos_width",
        "tail_pmos_width",
        "cross_width",
    )

    def _stage_capacitance(
        self, design: PseudoDiffVcoDesign, technology: Technology
    ) -> float:
        base = super()._stage_capacitance(design, technology)
        return base + _keeper_capacitance(design, technology)

    def _batch_stage_capacitance(self, params, nmos, pmos, technology: Technology):
        # Identical operation order to the scalar helper above, so the
        # vectorised path stays bit-identical to the serial one.
        from repro.spice.mosfet import _EPS_OX

        base = super()._batch_stage_capacitance(params, nmos, pmos, technology)
        cox_n = _EPS_OX / nmos["tox"]
        cox_p = _EPS_OX / pmos["tox"]
        keeper = cox_n * params["cross_width"] * (
            _KEEPER_LENGTH_FACTOR * params["nmos_length"]
        )
        keeper = keeper + cox_p * (2.0 * params["cross_width"]) * (
            _KEEPER_LENGTH_FACTOR * params["pmos_length"]
        )
        keeper = keeper + nmos["cj"] * params["cross_width"] * nmos["drain_extension"]
        keeper = keeper + pmos["cj"] * (2.0 * params["cross_width"]) * pmos["drain_extension"]
        return base + keeper

    def _finalise_performance(self, performance: VcoPerformance) -> VcoPerformance:
        return VcoPerformance(
            kvco=performance.kvco,
            jitter=performance.jitter / _SQRT2,
            current=performance.current * 2.0,
            fmin=performance.fmin,
            fmax=performance.fmax,
        )


class PseudoDiffSpiceEvaluator(RingVcoSpiceEvaluator):
    """Transistor-level evaluator of the pseudo-differential VCO."""

    topology_name = "pseudodiff-vco"
    design_cls = PseudoDiffVcoDesign
    testbench_cls = PseudoDiffTestbench
