"""Transistor-level VCO test bench.

The equivalent of the paper's SpectreRF test bench netlist: for a given
design point the VCO is simulated at the minimum and maximum control
voltages, the oscillation frequency and average supply current are measured
from the transient waveforms, and the VCO gain is the frequency difference
over the control-voltage span.  RMS period jitter is estimated from the
device thermal noise at the oscillation operating point (the pure-Python
engine does not run transient noise analysis; the estimator is the standard
first-crossing approximation ``sigma_edge = sqrt(kT C_L) / I`` accumulated
over the ``2 N`` edges of one period).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.performance import VcoPerformance
from repro.circuits.ring_vco import N_STAGES, VcoDesign, build_ring_vco
from repro.process.technology import TECH_012UM, Technology
from repro.spice.exceptions import AnalysisError, ConvergenceError
from repro.spice.netlist import Circuit
from repro.spice.plan import ENGINES
from repro.spice.transient import LaneTransientAnalysis, TransientAnalysis, TransientResult

__all__ = ["VcoTestbench", "VcoMeasurement"]

#: One batch item for :meth:`VcoTestbench.run_batch`:
#: (design, technology or None, device overrides or None).
BatchTask = Tuple[VcoDesign, Optional[Technology], Optional[Dict[str, Dict[str, float]]]]

_BOLTZMANN = 1.380649e-23


@dataclass
class VcoMeasurement:
    """Raw measurements of one transient run at a fixed control voltage."""

    vctrl: float
    frequency: float
    supply_current: float
    oscillates: bool


class VcoTestbench:
    """Measure the five VCO performances with the MNA transient engine.

    ``engine`` selects the simulation backend: ``"reference"`` (per-element
    Python stamping, byte-stable), ``"compiled"`` (vectorised stamp plan)
    or ``"lanes"`` (compiled plus lane-parallel batch transients in
    :meth:`run_batch`; single measurements use the compiled path).
    """

    #: Output node whose waveform is measured; topology subclasses override
    #: it together with :meth:`_build_circuit` (the netlist seam).
    measure_node = "n0"

    def __init__(
        self,
        technology: Technology = TECH_012UM,
        vctrl_min: float = 0.5,
        vctrl_max: float | None = None,
        n_stages: int = N_STAGES,
        sim_cycles: float = 8.0,
        dt: float = 4e-12,
        max_sim_time: float = 30e-9,
        engine: str = "reference",
    ) -> None:
        if vctrl_max is None:
            vctrl_max = technology.vdd
        if not 0.0 < vctrl_min < vctrl_max:
            raise ValueError("control-voltage window must satisfy 0 < vctrl_min < vctrl_max")
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
        self.technology = technology
        self.vctrl_min = vctrl_min
        self.vctrl_max = vctrl_max
        self.n_stages = n_stages
        self.sim_cycles = sim_cycles
        self.dt = dt
        self.max_sim_time = max_sim_time
        self.engine = engine

    # -- shared transient set-up ------------------------------------------------------

    def _kick_conditions(self, vdd: float) -> Dict[str, float]:
        # Kick the ring with alternating initial conditions so oscillation
        # starts within a couple of stage delays.
        initial = {}
        for stage in range(self.n_stages):
            initial[f"n{stage}"] = vdd if stage % 2 == 0 else 0.0
        initial[f"n{self.n_stages - 1}"] = vdd / 2.0
        return initial

    def _t_stop(self) -> float:
        return min(self.max_sim_time, max(6e-9, self.sim_cycles * 2e-9))

    def _measure_result(
        self, result: Optional[TransientResult], vctrl: float, vdd: float
    ) -> VcoMeasurement:
        """Extract frequency and supply current from one transient result."""
        dead = VcoMeasurement(vctrl=vctrl, frequency=0.0, supply_current=0.0, oscillates=False)
        if result is None:
            return dead
        wave = result.voltage(self.measure_node)
        swing = wave.peak_to_peak()
        if swing < 0.3 * vdd:
            return dead
        try:
            frequency = wave.frequency(threshold=vdd / 2.0)
        except ValueError:
            return dead
        current = abs(result.source_current("vdd").average())
        return VcoMeasurement(
            vctrl=vctrl, frequency=frequency, supply_current=current, oscillates=True
        )

    # -- netlist seam ----------------------------------------------------------------

    def _build_circuit(
        self,
        design: VcoDesign,
        technology: Technology,
        vctrl: float,
        device_overrides: Optional[Dict[str, Dict[str, float]]] = None,
    ) -> Circuit:
        """Netlist of one measurement -- the topology seam's override point."""
        return build_ring_vco(
            design,
            technology,
            vctrl=vctrl,
            n_stages=self.n_stages,
            device_overrides=device_overrides,
        )

    # -- single-point measurement ----------------------------------------------------

    def measure_at(
        self,
        design: VcoDesign,
        vctrl: float,
        device_overrides: Optional[Dict[str, Dict[str, float]]] = None,
    ) -> VcoMeasurement:
        """Run one transient and measure frequency and supply current."""
        circuit = self._build_circuit(
            design, self.technology, vctrl, device_overrides=device_overrides
        )
        vdd = self.technology.vdd
        try:
            result = TransientAnalysis(
                circuit,
                t_stop=self._t_stop(),
                dt=self.dt,
                initial_conditions=self._kick_conditions(vdd),
                use_dc_start=False,
                engine="reference" if self.engine == "reference" else "compiled",
            ).run()
        except (ConvergenceError, AnalysisError):
            result = None
        return self._measure_result(result, vctrl, vdd)

    # -- jitter estimate ----------------------------------------------------------------

    def estimate_jitter(
        self,
        design: VcoDesign,
        frequency: float,
        supply_current: float,
        technology: Optional[Technology] = None,
    ) -> float:
        """Thermal-noise period jitter estimate at the measured operating point.

        Uses the first-crossing approximation: the voltage noise sampled on
        the stage load capacitance is ``sqrt(kT/C)``; divided by the slew
        rate ``I/C`` it gives a per-edge timing error ``sqrt(kT C)/I`` which
        accumulates over the ``2 N`` edges of one period.
        """
        tech = technology or self.technology
        if frequency <= 0.0 or supply_current <= 0.0:
            return float("inf")
        c_load = self._stage_capacitance(design, tech)
        stage_current = supply_current  # the starving current limits each edge
        noise_factor = 2.0  # accounts for the ~2/3 channel factor and both devices
        sigma_edge = (noise_factor * _BOLTZMANN * tech.temperature * c_load) ** 0.5
        sigma_edge /= max(stage_current / self.n_stages, 1e-9)
        return float((2.0 * self.n_stages) ** 0.5 * sigma_edge)

    def _stage_capacitance(
        self, design: VcoDesign, technology: Optional[Technology] = None
    ) -> float:
        tech = technology or self.technology
        nmos = tech.nmos
        pmos = tech.pmos
        gate_cap = (
            nmos.cox * design.nmos_width * design.nmos_length
            + pmos.cox * design.pmos_width * design.pmos_length
        )
        junction = nmos.cj * design.nmos_width * nmos.drain_extension
        junction += pmos.cj * design.pmos_width * pmos.drain_extension
        return gate_cap + junction + tech.stage_load_capacitance

    # -- full characterisation ------------------------------------------------------------

    def _combine(
        self,
        design: VcoDesign,
        low: VcoMeasurement,
        high: VcoMeasurement,
        technology: Optional[Technology] = None,
    ) -> VcoPerformance:
        """Turn the two control-voltage measurements into the performances."""
        if not high.oscillates:
            # Dead design point: return a heavily penalised performance.
            return VcoPerformance(kvco=0.0, jitter=1e-9, current=1.0, fmin=0.0, fmax=0.0)
        fmin = low.frequency if low.oscillates else 0.0
        fmax = high.frequency
        span = self.vctrl_max - self.vctrl_min
        kvco = max(fmax - fmin, 0.0) / span
        current = high.supply_current
        jitter = self.estimate_jitter(design, fmax, current, technology=technology)
        return VcoPerformance(kvco=kvco, jitter=jitter, current=current, fmin=fmin, fmax=fmax)

    def run(
        self,
        design: VcoDesign,
        device_overrides: Optional[Dict[str, Dict[str, float]]] = None,
    ) -> VcoPerformance:
        """Measure the five performances of one design point."""
        low = self.measure_at(design, self.vctrl_min, device_overrides)
        high = self.measure_at(design, self.vctrl_max, device_overrides)
        return self._combine(design, low, high)

    def run_batch(self, tasks: Sequence[BatchTask]) -> List[VcoPerformance]:
        """Measure many (design, technology, overrides) tasks in one go.

        Every task contributes two lanes (one per control voltage) to a
        single :class:`LaneTransientAnalysis`, so the whole batch advances
        through one time-marching loop with a batched Jacobian.  All tasks
        must share the ring topology (they do by construction: designs,
        technologies and mismatch overrides only change parameter values).
        """
        if not tasks:
            return []
        prepared = [
            (design, technology or self.technology, overrides)
            for design, technology, overrides in tasks
        ]
        circuits = []
        initial_conditions = []
        for design, tech, overrides in prepared:
            for vctrl in (self.vctrl_min, self.vctrl_max):
                circuits.append(
                    self._build_circuit(design, tech, vctrl, device_overrides=overrides)
                )
                initial_conditions.append(self._kick_conditions(tech.vdd))
        try:
            results: List[Optional[TransientResult]] = LaneTransientAnalysis(
                circuits,
                t_stop=self._t_stop(),
                dt=self.dt,
                initial_conditions=initial_conditions,
                use_dc_start=False,
            ).run()
        except (ConvergenceError, AnalysisError):
            results = [None] * len(circuits)
        performances = []
        for index, (design, tech, overrides) in enumerate(prepared):
            low = self._measure_result(results[2 * index], self.vctrl_min, tech.vdd)
            high = self._measure_result(results[2 * index + 1], self.vctrl_max, tech.vdd)
            performances.append(self._combine(design, low, high, technology=tech))
        return performances
