"""The Pareto-front performance model.

Section 3.3: "Having obtained the Pareto-points, all the optimal solutions
and their parameters are stored in a data file which defines the optimal
performance model for the design."

A :class:`PerformanceModel` stores the Pareto-optimal performance points
and their design parameters and provides two interpolation services:

* ``interpolate(kvco, ivco)`` -- the remaining performances (``jvco``,
  ``fmin``, ``fmax``) at a system-level operating point, used by the
  behavioural VCO model;
* ``design_parameters_for(kvco, ivco, ...)`` -- the transistor sizes that
  realise a performance point (the ``p1 ... p7`` table models of
  Listing 1), used for top-down specification propagation and bottom-up
  verification.

Both services use the N-dimensional table models of
:mod:`repro.tablemodel`, with cubic-spline control strings by default.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.circuits.performance import VcoPerformance
from repro.circuits.topology import design_from_parameters
from repro.optim.pareto import ParetoFront
from repro.tablemodel import TableND

__all__ = ["PerformanceModel"]

_PERFORMANCE_NAMES = ("kvco", "jitter", "current", "fmin", "fmax")
#: Aliases between the behavioural-model names and the evaluator names.
_ALIASES = {"jvco": "jitter", "ivco": "current"}


class PerformanceModel:
    """Interpolated model of the circuit-level Pareto front."""

    def __init__(
        self,
        parameters: np.ndarray,
        performances: np.ndarray,
        parameter_names: Sequence[str],
        performance_names: Sequence[str] = _PERFORMANCE_NAMES,
        control: str = "3E",
    ) -> None:
        parameters = np.asarray(parameters, dtype=float)
        performances = np.asarray(performances, dtype=float)
        if parameters.ndim != 2 or performances.ndim != 2:
            raise ValueError("parameters and performances must be 2-D arrays")
        if parameters.shape[0] != performances.shape[0]:
            raise ValueError("parameters and performances must have the same number of rows")
        if parameters.shape[0] == 0:
            raise ValueError("a performance model needs at least one Pareto point")
        if len(parameter_names) != parameters.shape[1]:
            raise ValueError("one name per parameter column is required")
        if len(performance_names) != performances.shape[1]:
            raise ValueError("one name per performance column is required")
        self.parameters = parameters
        self.performances = performances
        self.parameter_names = list(parameter_names)
        self.performance_names = list(performance_names)
        self.control = control
        self._tables: Dict[str, TableND] = {}
        self._parameter_tables: Dict[str, TableND] = {}
        self._build_tables()

    # -- construction ------------------------------------------------------------------

    @classmethod
    def from_pareto_front(cls, front: ParetoFront, control: str = "3E") -> "PerformanceModel":
        """Build the model from an optimisation result's Pareto front."""
        if len(front) == 0:
            raise ValueError("the Pareto front is empty")
        performances = np.column_stack(
            [front.raw_objective(name) for name in _PERFORMANCE_NAMES]
        )
        return cls(
            parameters=front.parameters,
            performances=performances,
            parameter_names=front.parameter_names,
            performance_names=list(_PERFORMANCE_NAMES),
            control=control,
        )

    def _build_tables(self) -> None:
        # (kvco, current) are the system-level designables; every other
        # performance and every design parameter is tabulated against them.
        key_columns = [
            self.performance_names.index("kvco"),
            self.performance_names.index("current"),
        ]
        keys = self.performances[:, key_columns]
        for idx, name in enumerate(self.performance_names):
            if idx in key_columns:
                continue
            self._tables[name] = TableND(
                keys, self.performances[:, idx], control=self.control, name=f"{name}_data"
            )
        for idx, name in enumerate(self.parameter_names):
            self._parameter_tables[name] = TableND(
                keys, self.parameters[:, idx], control=self.control, name=f"{name}_data"
            )

    # -- sizes and ranges ----------------------------------------------------------------

    @property
    def n_points(self) -> int:
        """Number of Pareto points stored in the model."""
        return int(self.performances.shape[0])

    def performance_column(self, name: str) -> np.ndarray:
        """All Pareto values of one performance."""
        name = _ALIASES.get(name, name)
        return self.performances[:, self.performance_names.index(name)]

    def performance_range(self, name: str) -> tuple:
        """``(min, max)`` of one performance across the Pareto front."""
        column = self.performance_column(name)
        return float(np.min(column)), float(np.max(column))

    # -- interpolation ------------------------------------------------------------------------

    def interpolate(self, kvco: float, ivco: float) -> Dict[str, float]:
        """Remaining performances at a (gain, current) operating point.

        Returns a dictionary with both the evaluator names (``jitter``,
        ``fmin``, ``fmax``) and the behavioural-model aliases (``jvco``).
        """
        result: Dict[str, float] = {
            "kvco": float(kvco),
            "current": float(ivco),
            "ivco": float(ivco),
        }
        for name, table in self._tables.items():
            result[name] = float(table(kvco, ivco))
        result["jvco"] = result["jitter"]
        return result

    def interpolate_batch(self, kvcos, ivcos) -> List[Dict[str, float]]:
        """Batched :meth:`interpolate` over arrays of operating points.

        Each table is evaluated once with the whole ``(n, 2)`` query matrix
        instead of once per point; the table evaluation is row-wise
        identical to the scalar calls, so every returned record matches
        :meth:`interpolate` bit-for-bit.
        """
        kvcos = np.atleast_1d(np.asarray(kvcos, dtype=float))
        ivcos = np.atleast_1d(np.asarray(ivcos, dtype=float))
        if kvcos.shape != ivcos.shape or kvcos.ndim != 1:
            raise ValueError("kvcos and ivcos must be 1-D arrays of equal length")
        query = np.column_stack([kvcos, ivcos])
        columns = {
            name: np.atleast_1d(table(query)) for name, table in self._tables.items()
        }
        records: List[Dict[str, float]] = []
        for index in range(kvcos.size):
            record: Dict[str, float] = {
                "kvco": float(kvcos[index]),
                "current": float(ivcos[index]),
                "ivco": float(ivcos[index]),
            }
            for name, column in columns.items():
                record[name] = float(column[index])
            record["jvco"] = record["jitter"]
            records.append(record)
        return records

    def design_parameters_for(self, kvco: float, ivco: float) -> Any:
        """Transistor sizes realising a (gain, current) operating point.

        This is the Listing-1 lookup ``p1 ... p7 = $table_model(kvco, ivco,
        ...)`` reduced to the two system-level designables.  The design
        class is recovered from the stored parameter-name set through the
        topology registry, so models pickled before the topology seam
        still reconstruct ring designs.
        """
        values = {
            name: float(table(kvco, ivco)) for name, table in self._parameter_tables.items()
        }
        return design_from_parameters(self.parameter_names, values)

    def consistency_distance(self, kvco: float, ivco: float) -> float:
        """Normalised distance from a (gain, current) query to the Pareto front.

        Both coordinates are normalised by the front's span, so a distance
        of 0 means the query coincides with a stored Pareto point and a
        distance of 1 means it is one full front-span away.  The system
        stage uses this to keep candidate operating points realisable
        (interpolation far away from the sampled front is meaningless).
        """
        kvco_column = self.performance_column("kvco")
        current_column = self.performance_column("current")
        kvco_span = max(np.ptp(kvco_column), 1e-30)
        current_span = max(np.ptp(current_column), 1e-30)
        distance = ((kvco_column - kvco) / kvco_span) ** 2
        distance += ((current_column - ivco) / current_span) ** 2
        return float(np.sqrt(np.min(distance)))

    def nearest_point(self, kvco: float, ivco: float) -> Dict[str, float]:
        """The stored Pareto point closest to a (gain, current) query."""
        kvco_column = self.performance_column("kvco")
        current_column = self.performance_column("current")
        kvco_span = max(np.ptp(kvco_column), 1e-30)
        current_span = max(np.ptp(current_column), 1e-30)
        distance = ((kvco_column - kvco) / kvco_span) ** 2
        distance += ((current_column - ivco) / current_span) ** 2
        index = int(np.argmin(distance))
        return self.point(index)

    def point(self, index: int) -> Dict[str, float]:
        """One stored Pareto point as a flat dictionary."""
        record: Dict[str, float] = {}
        for i, name in enumerate(self.performance_names):
            record[name] = float(self.performances[index, i])
        for i, name in enumerate(self.parameter_names):
            record[name] = float(self.parameters[index, i])
        return record

    def records(self) -> List[Dict[str, float]]:
        """All Pareto points as flat dictionaries (tabular export)."""
        return [self.point(i) for i in range(self.n_points)]

    def performance_records(self) -> List[VcoPerformance]:
        """All Pareto points as :class:`VcoPerformance` records."""
        return [
            VcoPerformance(
                kvco=float(row[self.performance_names.index("kvco")]),
                jitter=float(row[self.performance_names.index("jitter")]),
                current=float(row[self.performance_names.index("current")]),
                fmin=float(row[self.performance_names.index("fmin")]),
                fmax=float(row[self.performance_names.index("fmax")]),
            )
            for row in self.performances
        ]
