"""``.tbl`` data-file layout of the combined model.

The paper stores the behavioural model data in plain-text table files
consumed by ``$table_model`` (Listing 1): one ``<perf>_delta.tbl`` file per
variation table and one ``p<i>_data.tbl`` file per design parameter, plus
the Pareto performance data itself.  This module writes and reads that
directory layout so a model extracted once can be reused across sessions
(the "initial time investment is high, subsequent design flows are
significantly faster" argument of section 1).

Layout of a model directory::

    pareto.tbl        # columns: kvco jitter current fmin fmax  p1 ... p7
    spreads.tbl       # per-point nominal values and spread percentages
    kvco_delta.tbl    # columns: kvco   spread_percent
    jvco_delta.tbl    # columns: jitter spread_percent
    ivco_delta.tbl    # columns: current spread_percent
    fmin_delta.tbl    # columns: fmin   spread_percent
    fmax_delta.tbl    # columns: fmax   spread_percent
    p1_data.tbl ...   # columns: kvco current  value-of-parameter-i
    manifest.txt      # human-readable description
"""

from __future__ import annotations

import os
from typing import Dict, List

import numpy as np

from repro.core.combined_model import CombinedPerformanceVariationModel
from repro.core.performance_model import PerformanceModel
from repro.core.variation_model import VariationModel
from repro.tablemodel import read_tbl, write_tbl

__all__ = ["write_model_directory", "read_model_directory"]

_PERFORMANCE_NAMES = ("kvco", "jitter", "current", "fmin", "fmax")
_DELTA_FILES = {
    "kvco": "kvco_delta.tbl",
    "jitter": "jvco_delta.tbl",
    "current": "ivco_delta.tbl",
    "fmin": "fmin_delta.tbl",
    "fmax": "fmax_delta.tbl",
}


def write_model_directory(model: CombinedPerformanceVariationModel, directory: str) -> List[str]:
    """Write a combined model to a directory of ``.tbl`` files.

    Returns the list of files written (relative names).  The directory is
    created if necessary; existing files are overwritten.
    """
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    performance = model.performance
    variation = model.variation
    # Pareto data: performances followed by design parameters.
    pareto = np.hstack([performance.performances, performance.parameters])
    header = [
        "Pareto-front performance and design-parameter data",
        "columns: "
        + " ".join(performance.performance_names)
        + " "
        + " ".join(performance.parameter_names),
    ]
    write_tbl(os.path.join(directory, "pareto.tbl"), pareto, header=header)
    written.append("pareto.tbl")
    # Per-point spread data (one row per Pareto point, aligned with pareto.tbl).
    spreads = np.hstack([variation.nominal, variation.spreads_percent])
    write_tbl(
        os.path.join(directory, "spreads.tbl"),
        spreads,
        header=[
            "Monte Carlo spread data",
            "columns: nominal "
            + " ".join(variation.performance_names)
            + " followed by spread_percent of the same performances",
        ],
    )
    written.append("spreads.tbl")
    # Listing-1 style <perf>_delta.tbl variation tables (deduplicated and
    # sorted by their abscissa, ready for $table_model consumption).
    for name, filename in _DELTA_FILES.items():
        table = variation.table(name)
        data = np.column_stack([table.x, table.y])
        write_tbl(
            os.path.join(directory, filename),
            data,
            header=[f"relative spread of {name} in percent vs nominal {name}"],
        )
        written.append(filename)
    # Design-parameter tables keyed by (kvco, current).
    keys = np.column_stack(
        [performance.performance_column("kvco"), performance.performance_column("current")]
    )
    for index, parameter_name in enumerate(performance.parameter_names):
        filename = f"p{index + 1}_data.tbl"
        data = np.column_stack([keys, performance.parameters[:, index]])
        write_tbl(
            os.path.join(directory, filename),
            data,
            header=[f"design parameter {parameter_name} vs (kvco, current)"],
        )
        written.append(filename)
    # Manifest.
    manifest_path = os.path.join(directory, "manifest.txt")
    with open(manifest_path, "w", encoding="utf-8") as handle:
        handle.write(f"block: {model.block_name}\n")
        handle.write(f"pareto_points: {model.n_points}\n")
        handle.write(f"mc_samples_per_point: {variation.n_samples}\n")
        handle.write(f"vctrl_min: {model.vctrl_min}\n")
        handle.write(f"vctrl_max: {model.vctrl_max}\n")
        handle.write("parameters: " + " ".join(performance.parameter_names) + "\n")
        handle.write("performances: " + " ".join(performance.performance_names) + "\n")
    written.append("manifest.txt")
    return written


def _read_manifest(path: str) -> Dict[str, str]:
    manifest: Dict[str, str] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if ":" not in line:
                continue
            key, value = line.split(":", 1)
            manifest[key.strip()] = value.strip()
    return manifest


def read_model_directory(directory: str) -> CombinedPerformanceVariationModel:
    """Reload a combined model previously written by :func:`write_model_directory`."""
    manifest_path = os.path.join(directory, "manifest.txt")
    if not os.path.exists(manifest_path):
        raise FileNotFoundError(f"no manifest.txt in {directory!r}; not a model directory")
    manifest = _read_manifest(manifest_path)
    parameter_names = manifest.get("parameters", "").split()
    performance_names = manifest.get("performances", "").split() or list(_PERFORMANCE_NAMES)
    pareto = read_tbl(os.path.join(directory, "pareto.tbl"))
    n_perf = len(performance_names)
    performances = pareto[:, :n_perf]
    parameters = pareto[:, n_perf:]
    if parameters.shape[1] != len(parameter_names):
        raise ValueError(
            f"pareto.tbl has {parameters.shape[1]} parameter column(s) but the manifest "
            f"lists {len(parameter_names)}"
        )
    performance_model = PerformanceModel(
        parameters=parameters,
        performances=performances,
        parameter_names=parameter_names,
        performance_names=performance_names,
    )
    # Per-point spread data is aligned row-by-row with pareto.tbl.
    spreads_data = read_tbl(os.path.join(directory, "spreads.tbl"))
    if spreads_data.shape != (performances.shape[0], 2 * n_perf):
        raise ValueError(
            f"spreads.tbl has shape {spreads_data.shape}; expected "
            f"({performances.shape[0]}, {2 * n_perf})"
        )
    variation_model = VariationModel(
        nominal=spreads_data[:, :n_perf],
        spreads_percent=spreads_data[:, n_perf:],
        performance_names=performance_names,
        n_samples=int(manifest.get("mc_samples_per_point", 0) or 0),
    )
    return CombinedPerformanceVariationModel(
        performance=performance_model,
        variation=variation_model,
        vctrl_min=float(manifest.get("vctrl_min", 0.5)),
        vctrl_max=float(manifest.get("vctrl_max", 1.2)),
        block_name=manifest.get("block", "vco"),
    )
