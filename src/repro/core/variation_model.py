"""The Monte-Carlo-derived variation model.

Section 3.3 of the paper: "during this step, a MC analysis is run for each
of the parameter solution sets that lies on the Pareto-front.  From this
simulation, a set of performance spreads is obtained.  The performance
spread information is stored together with the performance model in a
datafile."

A :class:`VariationModel` therefore stores, for every Pareto point, the
relative spread (in percent, exactly as Table 1 reports them) of each
performance, and builds the one-dimensional ``<perf>_delta`` look-up tables
of Listing 1 so that the behavioural VCO can interpolate the spread of any
intermediate operating point.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.behavioural.vco import VcoVariationTables
from repro.circuits.evaluators import VcoEvaluator
from repro.circuits.topology import topology_for_evaluator
from repro.process.montecarlo import MonteCarloEngine
from repro.tablemodel import Table1D

__all__ = ["VariationModel"]

#: Performances carried by the variation model, in storage order.
_PERFORMANCE_NAMES = ("kvco", "jitter", "current", "fmin", "fmax")
_ALIASES = {"jvco": "jitter", "ivco": "current"}


class VariationModel:
    """Relative performance spreads across the Pareto front."""

    def __init__(
        self,
        nominal: np.ndarray,
        spreads_percent: np.ndarray,
        performance_names: Sequence[str] = _PERFORMANCE_NAMES,
        control: str = "3E",
        n_samples: int = 0,
    ) -> None:
        nominal = np.asarray(nominal, dtype=float)
        spreads_percent = np.asarray(spreads_percent, dtype=float)
        if nominal.shape != spreads_percent.shape or nominal.ndim != 2:
            raise ValueError("nominal and spread arrays must be 2-D and of identical shape")
        if nominal.shape[0] == 0:
            raise ValueError("a variation model needs at least one Pareto point")
        if len(performance_names) != nominal.shape[1]:
            raise ValueError("one name per performance column is required")
        self.nominal = nominal
        self.spreads_percent = spreads_percent
        self.performance_names = list(performance_names)
        self.control = control
        self.n_samples = n_samples
        self._tables: Dict[str, Table1D] = {}
        self._vco_tables: Optional[VcoVariationTables] = None
        self._build_tables()

    def __getstate__(self):
        # The cached VcoVariationTables adapter holds local lambdas, which
        # do not pickle; drop it so the model stays picklable (the process
        # backend ships problems holding this model to its workers, which
        # rebuild the cache lazily).
        state = self.__dict__.copy()
        state["_vco_tables"] = None
        return state

    # -- construction -------------------------------------------------------------------

    @classmethod
    def from_monte_carlo(
        cls,
        designs: Sequence[Any],
        nominal_performances: Sequence[Mapping[str, float]],
        evaluator: VcoEvaluator,
        mc_engine_factory: Callable[[], MonteCarloEngine] | None = None,
        n_samples: int = 100,
        seed: int = 2009,
        control: str = "3E",
        progress: Optional[Callable[[int, int], None]] = None,
        use_batch: bool = False,
        checkpoint: Optional[Any] = None,
        cancel: Optional[Any] = None,
    ) -> "VariationModel":
        """Run one Monte Carlo analysis per Pareto point and collect spreads.

        Parameters
        ----------
        designs:
            Transistor-level design points of the Pareto front.
        nominal_performances:
            Nominal performance dictionaries, one per design (from the
            optimisation itself, so they are not recomputed).
        evaluator:
            The VCO evaluator used to re-simulate each Monte Carlo sample
            (the paper used 100 SpectreRF Monte Carlo samples per point).
        mc_engine_factory:
            Optional factory returning a configured
            :class:`~repro.process.montecarlo.MonteCarloEngine`; by default
            one is built from the evaluator's technology with ``n_samples``
            samples and the given ``seed``.
        n_samples / seed / control:
            Monte Carlo depth, seed and table-model control string.
        progress:
            Optional ``progress(done, total)`` callback.
        use_batch:
            Evaluate each point's Monte Carlo samples through the
            evaluator's vectorised batch path
            (:meth:`~repro.process.montecarlo.MonteCarloEngine.run_batch`).
            Results are identical for a vectorised evaluator, only faster.
        checkpoint:
            Optional duck-typed ``load()/store(state)/clear()`` store.  The
            completed per-point rows are persisted after every point, so an
            interrupted model build resumes at the first unfinished point.
            Each point seeds its own independent Monte Carlo engine
            (``seed + index``), so the resumed rows are bit-identical to an
            uninterrupted run's.
        cancel:
            Optional cancellation token (``raise_if_cancelled()``), observed
            at point boundaries.
        """
        if len(designs) != len(nominal_performances):
            raise ValueError("one nominal performance record per design is required")
        if not designs:
            raise ValueError("at least one Pareto design point is required")
        nominal_rows: List[List[float]] = []
        spread_rows: List[List[float]] = []
        total = len(designs)
        topology = topology_for_evaluator(evaluator)
        # Mismatch is injected per matched transistor, so the geometry list
        # must cover exactly the evaluator's ring length (3/5/7/9 stages).
        n_stages = getattr(evaluator, "n_stages", topology.default_n_stages)
        fingerprint = {
            "n_samples": int(n_samples),
            "seed": int(seed),
            "control": str(control),
            "designs": [design.as_dict() for design in designs],
        }
        if checkpoint is not None:
            state = checkpoint.load()
            if (
                isinstance(state, dict)
                and state.get("fingerprint") == fingerprint
                and len(state.get("nominal_rows", ())) == len(state.get("spread_rows", ()))
                and len(state.get("nominal_rows", ())) <= total
            ):
                nominal_rows = [list(row) for row in state["nominal_rows"]]
                spread_rows = [list(row) for row in state["spread_rows"]]
        start = len(nominal_rows)
        for index, (design, nominal) in enumerate(zip(designs, nominal_performances)):
            if index < start:
                continue
            if cancel is not None:
                cancel.raise_if_cancelled()
            if mc_engine_factory is not None:
                engine = mc_engine_factory()
            else:
                engine = MonteCarloEngine(
                    evaluator.technology, n_samples=n_samples, seed=seed + index
                )
            nominal_values = {name: float(nominal[name]) for name in _PERFORMANCE_NAMES}
            if use_batch:
                result = engine.run_batch(
                    evaluator.monte_carlo_batch_evaluator(design),
                    devices=topology.device_geometries(design, n_stages=n_stages),
                    nominal=nominal_values,
                )
            else:
                result = engine.run(
                    evaluator.monte_carlo_evaluator(design),
                    devices=topology.device_geometries(design, n_stages=n_stages),
                    nominal=nominal_values,
                )
            spreads = result.spreads()
            nominal_rows.append([float(nominal[name]) for name in _PERFORMANCE_NAMES])
            spread_rows.append([spreads[name].spread_percent for name in _PERFORMANCE_NAMES])
            if checkpoint is not None and len(nominal_rows) < total:
                checkpoint.store(
                    {
                        "fingerprint": fingerprint,
                        "nominal_rows": nominal_rows,
                        "spread_rows": spread_rows,
                    }
                )
            if progress is not None:
                progress(index + 1, total)
        if checkpoint is not None:
            checkpoint.clear()
        return cls(
            nominal=np.asarray(nominal_rows),
            spreads_percent=np.asarray(spread_rows),
            control=control,
            n_samples=n_samples,
        )

    def _build_tables(self) -> None:
        for idx, name in enumerate(self.performance_names):
            self._tables[name] = Table1D(
                self.nominal[:, idx],
                self.spreads_percent[:, idx],
                control=self.control,
                name=f"{name}_delta",
            )

    # -- queries --------------------------------------------------------------------------

    @property
    def n_points(self) -> int:
        """Number of Pareto points covered by the model."""
        return int(self.nominal.shape[0])

    def spread(self, name: str, value):
        """Interpolated relative spread (percent) of ``name`` at ``value``.

        The cubic-spline table can undershoot between samples, so the
        result is floored at zero (a spread is non-negative by definition).
        ``value`` may be a scalar or a lane array; the array form evaluates
        the table elementwise with results bit-identical to scalar calls.
        """
        name = _ALIASES.get(name, name)
        if name not in self._tables:
            raise KeyError(f"no variation table for performance {name!r}")
        result = self._tables[name](value)
        if np.ndim(value) == 0:
            return max(float(result), 0.0)
        return np.maximum(np.asarray(result, dtype=float), 0.0)

    def table(self, name: str) -> Table1D:
        """The underlying ``<name>_delta`` look-up table."""
        name = _ALIASES.get(name, name)
        return self._tables[name]

    def spread_column(self, name: str) -> np.ndarray:
        """Stored spreads (percent) of one performance across the front."""
        name = _ALIASES.get(name, name)
        return self.spreads_percent[:, self.performance_names.index(name)]

    def nominal_column(self, name: str) -> np.ndarray:
        """Stored nominal values of one performance across the front."""
        name = _ALIASES.get(name, name)
        return self.nominal[:, self.performance_names.index(name)]

    # -- behavioural-model integration ------------------------------------------------------

    def as_variation_tables(self) -> VcoVariationTables:
        """Adapt the model to the behavioural VCO's variation interface.

        The adapter is stateless, so one shared instance is cached and
        handed to every behavioural VCO built from this model -- which is
        what lets the lane-parallel engine recognise that all lanes share
        the same tables and evaluate them as one array call per table.
        """
        if self._vco_tables is None:
            self._vco_tables = VcoVariationTables(
                kvco_delta=lambda value: self.spread("kvco", value),
                ivco_delta=lambda value: self.spread("current", value),
                jvco_delta=lambda value: self.spread("jitter", value),
                fmin_delta=lambda value: self.spread("fmin", value),
                fmax_delta=lambda value: self.spread("fmax", value),
            )
        return self._vco_tables

    def records(self) -> List[Dict[str, float]]:
        """Per-point nominal values and spreads (Table-1 style rows)."""
        rows: List[Dict[str, float]] = []
        for i in range(self.n_points):
            row: Dict[str, float] = {}
            for j, name in enumerate(self.performance_names):
                row[name] = float(self.nominal[i, j])
                row[f"{name}_delta_pct"] = float(self.spreads_percent[i, j])
            rows.append(row)
        return rows
