"""Corner-sweep analysis of the circuit-level Pareto front.

Monte Carlo (the variation model) captures the statistical spread of the
process; corner analysis complements it by pushing the technology to its
specified extremes and asking what the Pareto front looks like in the
worst case.  :class:`CornerSweepAnalysis` re-evaluates every circuit-stage
Pareto design under each corner of a :class:`~repro.process.corners.CornerSet`
and condenses the per-corner fronts into a worst-case-corner front: for
every design the pessimal value of each performance across the corners,
with the corner that caused it recorded alongside.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.circuits.evaluators import VcoEvaluator
from repro.process.corners import CornerSet
from repro.process.technology import Technology

__all__ = ["CornerFront", "CornerSweepReport", "CornerSweepAnalysis"]

#: Performances carried per design, in storage order.
_PERFORMANCE_NAMES = ("kvco", "jitter", "current", "fmin", "fmax")

#: Worst-case sense of each performance: ``True`` means larger is worse
#: (jitter, current burn, a narrowed low end), ``False`` means smaller is
#: worse (gain and the achievable top frequency).
_LARGER_IS_WORSE = {
    "kvco": False,
    "jitter": True,
    "current": True,
    "fmin": True,
    "fmax": False,
}

#: Objectives (name, larger_is_worse) used for the worst-case front's
#: non-dominated filter -- the circuit stage's own trade-off triplet.
_FRONT_OBJECTIVES = ("kvco", "jitter", "current")


@dataclass
class CornerFront:
    """The Pareto designs re-evaluated under one corner."""

    corner: str
    technology: str
    records: List[Dict[str, float]] = field(default_factory=list)


@dataclass
class CornerSweepReport:
    """Per-corner fronts plus the condensed worst-case-corner front."""

    corners: List[str]
    designs: List[Dict[str, float]]
    fronts: List[CornerFront] = field(default_factory=list)
    worst_case: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def n_designs(self) -> int:
        """Number of swept Pareto designs."""
        return len(self.designs)

    def front(self, corner: str) -> CornerFront:
        """The re-evaluated front of one corner."""
        for entry in self.fronts:
            if entry.corner == corner:
                return entry
        raise KeyError(f"no swept corner named {corner!r}")

    def worst_case_front(self) -> List[Dict[str, Any]]:
        """Non-dominated subset of the worst-case records.

        Dominance uses the circuit stage's own objectives (maximise
        ``kvco``, minimise ``jitter`` and ``current``) applied to the
        worst-case values, so the returned rows are the designs whose
        *pessimal* behaviour is still Pareto-optimal.
        """

        def dominates(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
            not_worse = all(
                (a[name] <= b[name] if _LARGER_IS_WORSE[name] else a[name] >= b[name])
                for name in _FRONT_OBJECTIVES
            )
            strictly_better = any(
                (a[name] < b[name] if _LARGER_IS_WORSE[name] else a[name] > b[name])
                for name in _FRONT_OBJECTIVES
            )
            return not_worse and strictly_better

        return [
            row
            for row in self.worst_case
            if not any(dominates(other, row) for other in self.worst_case if other is not row)
        ]

    def summary(self) -> Dict[str, float]:
        """Headline numbers for progress payloads and reports."""
        return {
            "n_corners": float(len(self.corners)),
            "n_designs": float(self.n_designs),
            "worst_case_front_size": float(len(self.worst_case_front())),
        }


class CornerSweepAnalysis:
    """Re-evaluate circuit-stage Pareto designs across a corner set."""

    def __init__(
        self,
        evaluator: VcoEvaluator,
        technology: Technology,
        corners: CornerSet,
        use_batch: bool = False,
    ) -> None:
        self.evaluator = evaluator
        self.technology = technology
        self.corners = corners
        #: Route each corner's re-evaluation through the evaluator's
        #: vectorised batch path (identical results, one array call per
        #: corner instead of one Python call per design).
        self.use_batch = use_batch

    def run(self, circuit: Any, cancel: Optional[Any] = None) -> CornerSweepReport:
        """Sweep a :class:`~repro.core.circuit_stage.CircuitStageResult`.

        ``cancel`` (duck-typed ``raise_if_cancelled()``) is observed at
        corner boundaries.
        """
        designs = list(circuit.designs)
        if not designs:
            raise ValueError("the circuit stage produced no Pareto designs to sweep")
        report = CornerSweepReport(
            corners=self.corners.names,
            designs=[design.as_dict() for design in designs],
        )
        per_corner: List[List[Dict[str, float]]] = []
        for corner in self.corners:
            if cancel is not None:
                cancel.raise_if_cancelled()
            shifted = corner.apply(self.technology)
            if self.use_batch:
                performances = self.evaluator.evaluate_batch(designs, technology=shifted)
            else:
                performances = [
                    self.evaluator.evaluate(design, technology=shifted)
                    for design in designs
                ]
            records = [
                {name: float(getattr(performance, name)) for name in _PERFORMANCE_NAMES}
                for performance in performances
            ]
            per_corner.append(records)
            report.fronts.append(
                CornerFront(corner=corner.name, technology=shifted.name, records=records)
            )
        for index in range(len(designs)):
            worst: Dict[str, Any] = {"design": index}
            for name in _PERFORMANCE_NAMES:
                values = [
                    (records[index][name], corner_name)
                    for records, corner_name in zip(per_corner, self.corners.names)
                ]
                value, corner_name = (
                    max(values) if _LARGER_IS_WORSE[name] else min(values)
                )
                worst[name] = value
                worst[f"{name}_corner"] = corner_name
            report.worst_case.append(worst)
        return report
