"""Bottom-up verification of the behavioural model.

The last claim of the paper is that the behavioural prediction "has been
verified with transistor level simulations" without "a corresponding drop
in accuracy".  This module quantifies that claim for the reproduction: the
selected (or any) operating point is mapped back to transistor sizes and
re-evaluated with a reference evaluator -- by default the transistor-level
MNA test bench -- and the relative error of every performance against the
behavioural (table-model) prediction is reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.circuits.evaluators import VcoEvaluator
from repro.circuits.topology import topology_for_parameters
from repro.core.combined_model import CombinedPerformanceVariationModel
from repro.process.technology import TECH_012UM

__all__ = ["VerificationPoint", "VerificationReport", "BottomUpVerification"]

_PERFORMANCES = ("kvco", "jitter", "current", "fmin", "fmax")


@dataclass
class VerificationPoint:
    """Comparison of one operating point: model prediction vs reference."""

    kvco: float
    ivco: float
    design: Any
    predicted: Dict[str, float]
    measured: Dict[str, float]

    def relative_errors(self) -> Dict[str, float]:
        """Relative error of each performance (|pred - meas| / |meas|)."""
        errors: Dict[str, float] = {}
        for name in _PERFORMANCES:
            measured = self.measured.get(name)
            predicted = self.predicted.get(name)
            if measured is None or predicted is None:
                continue
            scale = abs(measured) if measured != 0.0 else 1.0
            errors[name] = abs(predicted - measured) / scale
        return errors


@dataclass
class VerificationReport:
    """Aggregate bottom-up verification results."""

    points: List[VerificationPoint] = field(default_factory=list)

    @property
    def n_points(self) -> int:
        """Number of verified operating points."""
        return len(self.points)

    def worst_error(self) -> float:
        """Largest relative error across all points and performances."""
        errors = [
            error for point in self.points for error in point.relative_errors().values()
        ]
        return max(errors) if errors else 0.0

    def mean_error(self, name: Optional[str] = None) -> float:
        """Mean relative error (optionally of a single performance)."""
        errors: List[float] = []
        for point in self.points:
            point_errors = point.relative_errors()
            if name is None:
                errors.extend(point_errors.values())
            elif name in point_errors:
                errors.append(point_errors[name])
        if not errors:
            return 0.0
        return sum(errors) / len(errors)

    def summary(self) -> Dict[str, float]:
        """Per-performance mean relative error plus the overall worst case."""
        result = {f"mean_error_{name}": self.mean_error(name) for name in _PERFORMANCES}
        result["worst_error"] = self.worst_error()
        result["n_points"] = float(self.n_points)
        return result


class BottomUpVerification:
    """Re-simulate selected operating points with a reference evaluator."""

    def __init__(
        self,
        model: CombinedPerformanceVariationModel,
        reference_evaluator: Optional[VcoEvaluator] = None,
        engine: str = "reference",
    ) -> None:
        self.model = model
        if reference_evaluator is None:
            # The model knows only its design-parameter names; resolve them
            # back to the topology whose SPICE test bench can re-measure
            # the reconstructed design points.
            topology = topology_for_parameters(model.performance.parameter_names)
            reference_evaluator = topology.spice_evaluator(TECH_012UM, engine=engine)
        self.reference_evaluator = reference_evaluator

    def _make_point(
        self, kvco: float, ivco: float, design: Any, measured: Mapping[str, float]
    ) -> VerificationPoint:
        """Pair the model's prediction with one reference measurement."""
        predicted = self.model.interpolate(kvco, ivco)
        return VerificationPoint(
            kvco=kvco,
            ivco=ivco,
            design=design,
            predicted={name: float(predicted[name]) for name in _PERFORMANCES},
            measured=dict(measured),
        )

    def verify_point(self, kvco: float, ivco: float) -> VerificationPoint:
        """Verify one (gain, current) operating point."""
        design = self.model.design_parameters_for(kvco, ivco)
        measured = self.reference_evaluator.evaluate(design).as_dict()
        return self._make_point(kvco, ivco, design, measured)

    def verify(self, operating_points: Sequence[Mapping[str, float]]) -> VerificationReport:
        """Verify a list of ``{"kvco": ..., "ivco": ...}`` operating points.

        All reference simulations go through the evaluator's
        ``evaluate_batch``, so a :class:`RingVcoSpiceEvaluator` fans the
        transistor-level transients out over its process pool (identical
        results to the per-point loop, one pool instead of N serial runs).
        """
        report = VerificationReport()
        if not operating_points:
            return report
        points = [
            (float(point["kvco"]), float(point["ivco"])) for point in operating_points
        ]
        designs = [self.model.design_parameters_for(kvco, ivco) for kvco, ivco in points]
        measured = self.reference_evaluator.evaluate_batch(designs)
        report.points.extend(
            self._make_point(kvco, ivco, design, performance.as_dict())
            for (kvco, ivco), design, performance in zip(points, designs, measured)
        )
        return report

    def verify_model_points(self, max_points: int = 3) -> VerificationReport:
        """Verify a subset of the Pareto points stored in the model itself."""
        performance = self.model.performance
        indices = range(0, performance.n_points, max(performance.n_points // max_points, 1))
        points = []
        for index in list(indices)[:max_points]:
            record = performance.point(index)
            points.append({"kvco": record["kvco"], "ivco": record["current"]})
        return self.verify(points)
