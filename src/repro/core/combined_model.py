"""The combined performance + variation behavioural model.

This is the paper's headline artefact (the title's "improved performance
and variation modelling"): one model object that couples

* the Pareto-front performance model (what trade-offs are achievable and
  with which transistor sizes), and
* the Monte-Carlo variation model (how much each performance spreads under
  process variation and mismatch),

and exposes them in the form the system-level optimisation consumes -- a
factory for :class:`~repro.behavioural.vco.BehaviouralVco` blocks plus
Table-1-style reporting and ``.tbl``/Verilog-A export hooks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.behavioural.vco import BehaviouralVco
from repro.core.performance_model import PerformanceModel
from repro.core.variation_model import VariationModel

__all__ = ["CombinedPerformanceVariationModel"]


class CombinedPerformanceVariationModel:
    """Performance model and variation model of one circuit block."""

    def __init__(
        self,
        performance: PerformanceModel,
        variation: VariationModel,
        vctrl_min: float = 0.5,
        vctrl_max: float = 1.2,
        block_name: str = "vco",
    ) -> None:
        if performance.n_points != variation.n_points:
            raise ValueError(
                "performance and variation models must cover the same Pareto points "
                f"({performance.n_points} vs {variation.n_points})"
            )
        self.performance = performance
        self.variation = variation
        self.vctrl_min = vctrl_min
        self.vctrl_max = vctrl_max
        self.block_name = block_name

    # -- ranges -------------------------------------------------------------------------

    @property
    def n_points(self) -> int:
        """Number of Pareto points behind the model."""
        return self.performance.n_points

    def kvco_range(self) -> tuple:
        """Gain range covered by the Pareto front (Hz/V)."""
        return self.performance.performance_range("kvco")

    def ivco_range(self) -> tuple:
        """Current range covered by the Pareto front (A)."""
        return self.performance.performance_range("current")

    # -- model services --------------------------------------------------------------------

    def interpolate(self, kvco: float, ivco: float) -> Dict[str, float]:
        """Nominal performances at a (gain, current) operating point."""
        return self.performance.interpolate(kvco, ivco)

    def spread(self, name: str, value: float) -> float:
        """Relative spread (percent) of one performance at a value."""
        return self.variation.spread(name, value)

    def design_parameters_for(self, kvco: float, ivco: float) -> Any:
        """Transistor sizes realising a (gain, current) operating point."""
        return self.performance.design_parameters_for(kvco, ivco)

    def behavioural_vco(self, kvco: float, ivco: float) -> BehaviouralVco:
        """Instantiate the Listing-2 behavioural VCO at an operating point."""
        return BehaviouralVco(
            kvco=kvco,
            ivco=ivco,
            performance_model=lambda k, i: self.performance.interpolate(k, i),
            variation=self.variation.as_variation_tables(),
            vctrl_min=self.vctrl_min,
            vctrl_max=self.vctrl_max,
        )

    def behavioural_vco_batch(self, kvcos, ivcos) -> List[BehaviouralVco]:
        """Batched :meth:`behavioural_vco` over arrays of operating points.

        The performance tables are interpolated once for the whole batch
        (row-wise identical to the per-point calls) and every block shares
        the model's cached variation-table adapter, which is what enables
        the lane-parallel PLL engine's single-array-call table path.
        """
        records = self.performance.interpolate_batch(kvcos, ivcos)
        tables = self.variation.as_variation_tables()
        return [
            BehaviouralVco(
                kvco=float(record["kvco"]),
                ivco=float(record["ivco"]),
                jvco=float(record["jvco"]),
                fmin=float(record["fmin"]),
                fmax=float(record["fmax"]),
                variation=tables,
                vctrl_min=self.vctrl_min,
                vctrl_max=self.vctrl_max,
            )
            for record in records
        ]

    # -- reporting ----------------------------------------------------------------------------

    def table1_records(self, max_rows: Optional[int] = None) -> List[Dict[str, float]]:
        """Rows in the format of the paper's Table 1.

        Each row reports the design index, Kvco (MHz/V) and its spread,
        Jvco (ps) and its spread, and Ivco (mA) and its spread.
        """
        kvco = self.performance.performance_column("kvco")
        jitter = self.performance.performance_column("jitter")
        current = self.performance.performance_column("current")
        order = np.argsort(kvco, kind="stable")
        rows: List[Dict[str, float]] = []
        for rank, index in enumerate(order):
            if max_rows is not None and rank >= max_rows:
                break
            rows.append(
                {
                    "design": int(index),
                    "kvco_mhz_per_v": float(kvco[index] / 1e6),
                    "kvco_delta_pct": float(self.variation.spread_column("kvco")[index]),
                    "jvco_ps": float(jitter[index] * 1e12),
                    "jvco_delta_pct": float(self.variation.spread_column("jitter")[index]),
                    "ivco_ma": float(current[index] * 1e3),
                    "ivco_delta_pct": float(self.variation.spread_column("current")[index]),
                }
            )
        return rows

    def describe(self) -> Dict[str, float]:
        """Compact numeric summary used by logs and reports."""
        kvco_lo, kvco_hi = self.kvco_range()
        ivco_lo, ivco_hi = self.ivco_range()
        return {
            "n_points": float(self.n_points),
            "kvco_min_hz_per_v": kvco_lo,
            "kvco_max_hz_per_v": kvco_hi,
            "ivco_min_a": ivco_lo,
            "ivco_max_a": ivco_hi,
            "mc_samples_per_point": float(self.variation.n_samples),
        }
