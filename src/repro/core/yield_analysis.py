"""Yield verification of the selected design (section 4.5).

"To verify the predicted yield given by the proposed approach, a Monte
Carlo analysis with 500 samples was run on the final design.  This
analysis confirmed a yield of 100%."

The analysis here reproduces that check: the selected system-level
operating point (Kvco, Ivco) is mapped back to transistor sizes through
the performance model, the VCO is Monte Carlo simulated with global
variation and mismatch, each sampled VCO is inserted into the behavioural
PLL, and the fraction of samples meeting every system specification is the
parametric yield.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.behavioural.pll import BehaviouralPll, PllDesign, PllPerformance
from repro.behavioural.vco import BehaviouralVco, VcoVariationTables
from repro.circuits.evaluators import VcoEvaluator
from repro.circuits.topology import DEFAULT_TOPOLOGY, get_topology, topology_for_evaluator
from repro.core.combined_model import CombinedPerformanceVariationModel
from repro.process.technology import TECH_012UM
from repro.core.specification import PLL_SPECIFICATIONS, SpecificationSet
from repro.obs import trace as obs_trace
from repro.process.montecarlo import MonteCarloEngine, ProcessSample
from repro.process.statistics import summarise_samples

__all__ = ["YieldReport", "YieldAnalysis"]


@dataclass
class YieldReport:
    """Result of the final Monte Carlo yield verification."""

    yield_fraction: float
    n_samples: int
    vco_design: Any
    system_samples: List[Dict[str, float]] = field(default_factory=list)
    violations: Dict[str, int] = field(default_factory=dict)

    @property
    def yield_percent(self) -> float:
        """Yield in percent (the paper reports 100%)."""
        return 100.0 * self.yield_fraction

    def spread_summary(self) -> Dict[str, float]:
        """Relative spread (percent) of every system performance."""
        if not self.system_samples:
            return {}
        arrays = {
            name: [sample[name] for sample in self.system_samples]
            for name in self.system_samples[0]
        }
        return {name: spread.spread_percent for name, spread in summarise_samples(arrays).items()}


class YieldAnalysis:
    """Monte Carlo yield verification of a selected PLL design."""

    def __init__(
        self,
        model: CombinedPerformanceVariationModel,
        evaluator: Optional[VcoEvaluator] = None,
        specifications: SpecificationSet = PLL_SPECIFICATIONS,
        n_samples: int = 500,
        seed: int = 2009,
        simulation_time: float = 3.0e-6,
        use_batch: bool = False,
    ) -> None:
        if n_samples < 1:
            raise ValueError("n_samples must be at least 1")
        self.model = model
        self.evaluator = evaluator or get_topology(DEFAULT_TOPOLOGY).analytical_evaluator(
            TECH_012UM
        )
        self.specifications = specifications
        self.n_samples = n_samples
        self.seed = seed
        self.simulation_time = simulation_time
        #: Evaluate the VCO Monte Carlo samples through the evaluator's
        #: vectorised batch path and propagate them through the behavioural
        #: PLL as one lane-parallel transient (identical results, two array
        #: calls instead of ``2 n_samples`` Python calls).
        self.use_batch = use_batch

    def run(
        self,
        selected_values: Mapping[str, float],
        checkpoint: Optional[object] = None,
        batch_size: Optional[int] = None,
        cancel: Optional[object] = None,
    ) -> YieldReport:
        """Verify the yield of the selected system-level solution.

        ``selected_values`` must contain the system designables ``kvco``,
        ``ivco``, ``c1``, ``c2`` and ``r1`` (the output of the system
        stage's selection step).

        Parameters
        ----------
        selected_values:
            The selected system-level operating point.
        checkpoint:
            Optional mid-stage checkpoint store with ``load()``,
            ``store(state)`` and ``clear()`` (duck-typed; the experiment
            runner passes a cache-entry-backed one).  After every evaluated
            batch the samples completed so far are persisted, and a rerun
            resumes from them instead of restarting the stage.  Because the
            Monte Carlo samples are drawn in one deterministic bulk RNG
            call and evaluated independently, a resumed run is
            bit-identical to an uninterrupted one.
        batch_size:
            Samples evaluated (and checkpointed) per batch.  ``None`` runs
            the whole analysis as a single batch.  Both paths evaluate
            sample-independent math, so the batch size never changes the
            result -- only how often progress is persisted.
        cancel:
            Optional :class:`~repro.cancel.CancelToken` observed at the
            batch boundaries (right after the previous batch's checkpoint
            was persisted), so a cancelled analysis always resumes from
            the samples already evaluated.
        """
        kvco = float(selected_values["kvco"])
        ivco = float(selected_values["ivco"])
        vco_design = self.model.design_parameters_for(kvco, ivco)
        pll_design = PllDesign(
            c1=float(selected_values["c1"]),
            c2=float(selected_values["c2"]),
            r1=float(selected_values["r1"]),
        )
        engine = MonteCarloEngine(
            self.evaluator.technology, n_samples=self.n_samples, seed=self.seed
        )
        # Mismatch geometries must cover exactly the evaluator's ring length
        # (the scenario subsystem runs 3/7/9-stage rings, not just 5).
        topology = topology_for_evaluator(self.evaluator)
        n_stages = getattr(self.evaluator, "n_stages", topology.default_n_stages)
        devices = topology.device_geometries(vco_design, n_stages=n_stages)
        process_samples = engine.sample_batch(devices)

        fingerprint = {
            "n_samples": self.n_samples,
            "seed": self.seed,
            "selected": {key: float(selected_values[key]) for key in sorted(selected_values)},
        }
        samples: List[Dict[str, float]] = []
        if checkpoint is not None:
            state = checkpoint.load()
            if (
                isinstance(state, dict)
                and state.get("fingerprint") == fingerprint
                and len(state.get("samples", ())) <= self.n_samples
            ):
                samples = list(state["samples"])

        chunk = self.n_samples if batch_size is None else max(1, int(batch_size))
        while len(samples) < self.n_samples:
            if cancel is not None:
                cancel.raise_if_cancelled()
            batch = process_samples[len(samples):len(samples) + chunk]
            with obs_trace.span(
                "yield.mc_batch",
                first_sample=len(samples),
                batch_size=len(batch),
                total=self.n_samples,
            ):
                samples.extend(self._evaluate_batch(batch, vco_design, pll_design))
                if checkpoint is not None and len(samples) < self.n_samples:
                    checkpoint.store({"fingerprint": fingerprint, "samples": samples})
        if checkpoint is not None:
            checkpoint.clear()

        passing = 0
        violation_counts: Dict[str, int] = {}
        for system in samples:
            failures = self.specifications.violations(system)
            if failures:
                for name in failures:
                    violation_counts[name] = violation_counts.get(name, 0) + 1
            else:
                passing += 1
        return YieldReport(
            yield_fraction=passing / len(samples),
            n_samples=len(samples),
            vco_design=vco_design,
            system_samples=samples,
            violations=violation_counts,
        )

    # -- helpers ------------------------------------------------------------------------

    def _evaluate_batch(
        self,
        process_samples: Sequence[ProcessSample],
        vco_design: Any,
        pll_design: PllDesign,
    ) -> List[Dict[str, float]]:
        """System performances of one batch of drawn process samples.

        Every sample is independent (its own technology shift, mismatch
        draw and behavioural-PLL lane), so evaluating in batches is
        bit-identical to evaluating all samples at once.
        """
        if self.use_batch:
            # Lane-parallel propagation: every sampled VCO becomes one lane
            # of a single batched transient (bit-identical to the loop).
            vco_results = self.evaluator.monte_carlo_batch_evaluator(vco_design)(
                [sample.technology for sample in process_samples],
                [sample.mismatch for sample in process_samples],
            )
            if len(vco_results) != len(process_samples):
                raise ValueError(
                    f"batch evaluator returned {len(vco_results)} result(s) for "
                    f"{len(process_samples)} sample(s)"
                )
            if any(not result for result in vco_results):
                raise ValueError("evaluator returned an empty performance dictionary")
            plls = [
                self._sample_pll(vco_sample, pll_design) for vco_sample in vco_results
            ]
            performances = BehaviouralPll.evaluate_batch(plls, max_time=self.simulation_time)
            return [self._finalise(performance) for performance in performances]
        evaluator = self.evaluator.monte_carlo_evaluator(vco_design)
        results = []
        for sample in process_samples:
            vco_sample = evaluator(sample.technology, sample.mismatch)
            if not vco_sample:
                raise ValueError("evaluator returned an empty performance dictionary")
            results.append(self._system_performance(vco_sample, pll_design))
        return results

    def _sample_pll(
        self, vco_sample: Mapping[str, float], pll_design: PllDesign
    ) -> BehaviouralPll:
        """Behavioural PLL carrying one sampled VCO (variation disabled)."""
        fmin = float(vco_sample["fmin"])
        fmax = float(vco_sample["fmax"])
        kvco = max(float(vco_sample["kvco"]), 1e6)
        if fmax <= fmin:
            fmax = fmin * 1.05
        vco = BehaviouralVco(
            kvco=kvco,
            ivco=max(float(vco_sample["current"]), 1e-6),
            jvco=max(float(vco_sample["jitter"]), 0.0),
            fmin=fmin,
            fmax=fmax,
            variation=VcoVariationTables.constant(0.0, 0.0, 0.0, 0.0, 0.0),
            vctrl_min=self.model.vctrl_min,
            vctrl_max=self.model.vctrl_max,
        )
        return BehaviouralPll(vco, pll_design)

    def _finalise(self, performance: PllPerformance) -> Dict[str, float]:
        """Performance record with unlocked lanes capped like the optimiser."""
        result = performance.as_dict()
        if not np.isfinite(result["lock_time"]):
            result["lock_time"] = 10.0 * self.simulation_time
        return result

    def _system_performance(
        self, vco_sample: Mapping[str, float], pll_design: PllDesign
    ) -> Dict[str, float]:
        """Propagate one sampled VCO through the behavioural PLL."""
        pll = self._sample_pll(vco_sample, pll_design)
        return self._finalise(pll.evaluate(max_time=self.simulation_time))
