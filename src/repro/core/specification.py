"""Design specifications and top-down specification propagation.

Section 2.3: "the design parameters from the previous optimisation are
taken as the specifications for the circuit level optimisation which
propagates the system level specification to the bottom level."

A :class:`Specification` is a bounded window on one performance; a
:class:`SpecificationSet` groups them, checks performance dictionaries
against them and computes worst-case margins.  The module also defines the
paper's PLL specification set (output range 500 MHz - 1.2 GHz, lock time
below 1 us, current below 15 mA, section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "Specification",
    "SpecificationSet",
    "PLL_SPECIFICATIONS",
    "LOW_POWER_PLL_SPECIFICATIONS",
    "VCO_RANGE_SPECIFICATIONS",
    "SPECIFICATION_SETS",
    "specification_set",
]


@dataclass(frozen=True)
class Specification:
    """A lower/upper window on one named performance."""

    name: str
    lower: Optional[float] = None
    upper: Optional[float] = None
    unit: str = ""

    def __post_init__(self) -> None:
        if self.lower is None and self.upper is None:
            raise ValueError(f"specification {self.name!r} needs at least one bound")
        if self.lower is not None and self.upper is not None and self.lower > self.upper:
            raise ValueError(f"specification {self.name!r} has lower bound above upper bound")

    def is_met(self, value: float) -> bool:
        """Whether ``value`` falls inside the window."""
        if self.lower is not None and value < self.lower:
            return False
        if self.upper is not None and value > self.upper:
            return False
        return True

    def margin(self, value: float) -> float:
        """Normalised distance to the nearest violated bound.

        Positive when the specification is met (distance to the closest
        bound over the bound magnitude), negative when violated.
        """
        margins: List[float] = []
        if self.lower is not None:
            scale = abs(self.lower) if self.lower != 0.0 else 1.0
            margins.append((value - self.lower) / scale)
        if self.upper is not None:
            scale = abs(self.upper) if self.upper != 0.0 else 1.0
            margins.append((self.upper - value) / scale)
        return min(margins)

    def as_window(self) -> Tuple[Optional[float], Optional[float]]:
        """The ``(lower, upper)`` tuple used by the yield calculators."""
        return (self.lower, self.upper)


class SpecificationSet:
    """A named collection of specifications."""

    def __init__(self, specifications: List[Specification], name: str = "") -> None:
        if not specifications:
            raise ValueError("a specification set needs at least one specification")
        names = [spec.name for spec in specifications]
        if len(set(names)) != len(names):
            raise ValueError("specification names must be unique")
        self.name = name
        self._specs: Dict[str, Specification] = {spec.name: spec for spec in specifications}

    def __iter__(self) -> Iterator[Specification]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __getitem__(self, name: str) -> Specification:
        return self._specs[name]

    @property
    def names(self) -> List[str]:
        """Names of the covered performances."""
        return list(self._specs)

    def is_met(self, performances: Mapping[str, float], partial: bool = False) -> bool:
        """Whether every covered performance meets its specification.

        With ``partial=True``, performances missing from the mapping are
        ignored (useful while propagating specs down the hierarchy before
        every block performance is known).
        """
        for name, spec in self._specs.items():
            if name not in performances:
                if partial:
                    continue
                raise KeyError(f"performance {name!r} missing from the evaluation")
            if not spec.is_met(float(performances[name])):
                return False
        return True

    def worst_margin(self, performances: Mapping[str, float]) -> float:
        """Smallest specification margin across all covered performances."""
        margins = []
        for name, spec in self._specs.items():
            if name not in performances:
                raise KeyError(f"performance {name!r} missing from the evaluation")
            margins.append(spec.margin(float(performances[name])))
        return min(margins)

    def violations(self, performances: Mapping[str, float]) -> Dict[str, float]:
        """Violated specifications and their (negative) margins."""
        result: Dict[str, float] = {}
        for name, spec in self._specs.items():
            if name not in performances:
                continue
            margin = spec.margin(float(performances[name]))
            if margin < 0.0:
                result[name] = margin
        return result

    def as_windows(self) -> Dict[str, Tuple[Optional[float], Optional[float]]]:
        """Windows keyed by performance name (for the yield calculators)."""
        return {name: spec.as_window() for name, spec in self._specs.items()}

    def propagate(
        self, assignments: Mapping[str, float], margin: float = 0.0
    ) -> "SpecificationSet":
        """Top-down propagation: turn chosen block values into block specs.

        For each assigned block parameter a two-sided window of +-``margin``
        (relative) around the assigned value is created -- this is how the
        system-level design space of the selected solution becomes the
        "design objective for the sub-block circuit level" (section 2.3).
        """
        specs = []
        for name, value in assignments.items():
            half_window = abs(value) * margin
            specs.append(Specification(name, lower=value - half_window, upper=value + half_window))
        return SpecificationSet(specs, name=f"{self.name}:propagated")


#: The paper's PLL system specifications (section 4): output frequency range
#: 500 MHz - 1.2 GHz, lock time below 1 us, supply current below 15 mA.
PLL_SPECIFICATIONS = SpecificationSet(
    [
        Specification("lock_time", upper=1.0e-6, unit="s"),
        Specification("current", upper=15.0e-3, unit="A"),
        Specification("final_frequency", lower=500.0e6, upper=1.2e9, unit="Hz"),
    ],
    name="pll_system",
)

#: A tighter low-power variant of the PLL specifications: the supply-current
#: budget is cut from 15 mA to 12 mA (the behavioural PLL carries a 10 mA
#: peripheral floor, so this leaves ~2 mA for the VCO) in exchange for a
#: relaxed 1.5 us lock-time window.  Used by the ``low-power`` scenario.
LOW_POWER_PLL_SPECIFICATIONS = SpecificationSet(
    [
        Specification("lock_time", upper=1.5e-6, unit="s"),
        Specification("current", upper=12.0e-3, unit="A"),
        Specification("final_frequency", lower=500.0e6, upper=1.2e9, unit="Hz"),
    ],
    name="pll_low_power",
)

#: Block-level tuning-range requirements derived from the PLL output range.
VCO_RANGE_SPECIFICATIONS = SpecificationSet(
    [
        Specification("fmin", upper=500.0e6, unit="Hz"),
        Specification("fmax", lower=1.2e9, unit="Hz"),
    ],
    name="vco_tuning_range",
)

#: Named registry of system-level specification sets, keyed by their
#: ``name`` attribute.  Scenario configurations refer to specification sets
#: by these keys so a scenario stays a plain, hashable value object.
SPECIFICATION_SETS: Dict[str, SpecificationSet] = {
    PLL_SPECIFICATIONS.name: PLL_SPECIFICATIONS,
    LOW_POWER_PLL_SPECIFICATIONS.name: LOW_POWER_PLL_SPECIFICATIONS,
}


def specification_set(key: str) -> SpecificationSet:
    """Look up a registered specification set by name.

    Parameters
    ----------
    key:
        Registry key (``"pll_system"``, ``"pll_low_power"``, ...).

    Returns
    -------
    SpecificationSet
        The registered specification set.

    Raises
    ------
    KeyError
        If no specification set is registered under ``key``.
    """
    try:
        return SPECIFICATION_SETS[key]
    except KeyError:
        known = ", ".join(sorted(SPECIFICATION_SETS))
        raise KeyError(f"unknown specification set {key!r}; registered sets: {known}") from None
