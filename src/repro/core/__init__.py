"""The paper's contribution: combined performance and variation modelling
for hierarchical optimisation.

The flow implemented here follows figure 4 of the paper:

1. **Netlist and objective-function generation** -- the VCO sizing problem
   (:class:`~repro.core.circuit_stage.VcoSizingProblem`) with the paper's
   designable parameters, bounds and five performance functions.
2. **Multi-objective optimisation** -- NSGA-II produces the circuit-level
   Pareto front (:class:`~repro.core.circuit_stage.CircuitLevelOptimisation`).
3. **Performance and variation modelling** -- every Pareto point receives a
   Monte Carlo analysis; the nominal performances become the
   :class:`~repro.core.performance_model.PerformanceModel` and the relative
   spreads become the :class:`~repro.core.variation_model.VariationModel`;
   both are bundled into a
   :class:`~repro.core.combined_model.CombinedPerformanceVariationModel`.
4. **Lookup-table model development** -- the combined model is written to
   ``.tbl`` data files (:mod:`repro.core.datafile`) and to Verilog-A text
   (:mod:`repro.core.codegen`), mirroring Listings 1 and 2.
5. **Hierarchical (system-level) optimisation** -- the behavioural PLL with
   the combined VCO model is optimised over (Kvco, Ivco, C1, C2, R1)
   (:class:`~repro.core.system_stage.SystemLevelOptimisation`), and a
   design meeting the specifications including variation is selected.
6. **Bottom-up verification and yield** -- the selected design is mapped
   back to transistor sizes, Monte Carlo verified and its parametric yield
   reported (:mod:`repro.core.yield_analysis`,
   :mod:`repro.core.verification`).

:class:`~repro.core.flow.HierarchicalFlow` chains all six steps.
"""

from repro.core.circuit_stage import CircuitLevelOptimisation, VcoSizingProblem
from repro.core.codegen import generate_listing1, generate_listing2, write_verilog_a
from repro.core.combined_model import CombinedPerformanceVariationModel
from repro.core.datafile import read_model_directory, write_model_directory
from repro.core.flow import FlowReport, HierarchicalFlow
from repro.core.performance_model import PerformanceModel
from repro.core.specification import Specification, SpecificationSet, PLL_SPECIFICATIONS
from repro.core.system_stage import PllSystemProblem, SystemLevelOptimisation
from repro.core.variation_model import VariationModel
from repro.core.verification import BottomUpVerification, VerificationReport
from repro.core.yield_analysis import YieldAnalysis, YieldReport

__all__ = [
    "PerformanceModel",
    "VariationModel",
    "CombinedPerformanceVariationModel",
    "Specification",
    "SpecificationSet",
    "PLL_SPECIFICATIONS",
    "VcoSizingProblem",
    "CircuitLevelOptimisation",
    "PllSystemProblem",
    "SystemLevelOptimisation",
    "HierarchicalFlow",
    "FlowReport",
    "YieldAnalysis",
    "YieldReport",
    "BottomUpVerification",
    "VerificationReport",
    "write_model_directory",
    "read_model_directory",
    "generate_listing1",
    "generate_listing2",
    "write_verilog_a",
]
