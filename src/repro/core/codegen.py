"""Verilog-A code generation (Listings 1 and 2 of the paper).

The paper's behavioural models are written in Verilog-A and use the
``$table_model`` system function against the extracted ``.tbl`` data files.
No Verilog-A elaborator is available offline, but generating the source
text keeps the reproduction faithful and gives users of a commercial
simulator a drop-in artefact: :func:`generate_listing1` emits the combined
performance-and-variation lookup module and :func:`generate_listing2` the
behavioural VCO module with nominal / minimum / maximum outputs and jitter
injection.
"""

from __future__ import annotations

import os
from typing import List

from repro.core.combined_model import CombinedPerformanceVariationModel

__all__ = ["generate_listing1", "generate_listing2", "write_verilog_a"]

_DELTA_FILES = {
    "kvco": "kvco_delta.tbl",
    "jvco": "jvco_delta.tbl",
    "ivco": "ivco_delta.tbl",
    "fmin": "fmin_delta.tbl",
    "fmax": "fmax_delta.tbl",
}


def generate_listing1(model: CombinedPerformanceVariationModel, control: str = "3E") -> str:
    """Emit the performance-and-variation lookup module (paper Listing 1)."""
    parameter_names = model.performance.parameter_names
    lines: List[str] = []
    lines.append("// Auto-generated combined performance and variation model")
    lines.append(f"// block: {model.block_name}, pareto points: {model.n_points}")
    lines.append("`include \"constants.vams\"")
    lines.append("`include \"disciplines.vams\"")
    lines.append("")
    lines.append(f"module {model.block_name}_perf_var_model(kvco_in, ivco_in);")
    lines.append("  input kvco_in, ivco_in;")
    lines.append("  electrical kvco_in, ivco_in;")
    lines.append("  real kvco, ivco, jvco, fmin, fmax;")
    lines.append("  real kvco_delta, ivco_delta, jvco_delta, fmin_delta, fmax_delta;")
    lines.append("  real " + ", ".join(f"p{i + 1}" for i in range(len(parameter_names))) + ";")
    lines.append("  integer fptr;")
    lines.append("")
    lines.append("  analog begin")
    lines.append("    kvco = V(kvco_in);")
    lines.append("    ivco = V(ivco_in);")
    for name, filename in _DELTA_FILES.items():
        source = {
            "kvco": "kvco", "ivco": "ivco", "jvco": "jvco", "fmin": "fmin", "fmax": "fmax"
        }[name]
        lines.append(
            f"    {name}_delta = $table_model({source}, \"{filename}\", \"{control}\");"
        )
    lines.append(
        f"    jvco = $table_model(kvco, ivco, \"jvco_data.tbl\", \"{control},{control}\");"
    )
    lines.append(
        f"    fmin = $table_model(kvco, ivco, \"fmin_data.tbl\", \"{control},{control}\");"
    )
    lines.append(
        f"    fmax = $table_model(kvco, ivco, \"fmax_data.tbl\", \"{control},{control}\");"
    )
    for index, parameter in enumerate(parameter_names):
        lines.append(
            f"    p{index + 1} = $table_model(kvco, ivco, \"p{index + 1}_data.tbl\", "
            f"\"{control},{control}\");  // {parameter}"
        )
    lines.append("    fptr = $fopen(\"params.dat\");")
    lines.append("    $fwrite(fptr, \"\\n Generated Design Parameters\\n\");")
    write_args = ", ".join(f"p{i + 1}" for i in range(len(parameter_names)))
    formats = " ".join("%e" for _ in parameter_names)
    lines.append(f"    $fwrite(fptr, \"{formats}\", {write_args});")
    lines.append("    $fclose(fptr);")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def generate_listing2(
    model: CombinedPerformanceVariationModel,
    divide_ratio: int = 24,
    control: str = "3E",
) -> str:
    """Emit the behavioural VCO module (paper Listing 2)."""
    kvco_lo, kvco_hi = model.kvco_range()
    ivco_lo, ivco_hi = model.ivco_range()
    lines: List[str] = []
    lines.append("// Auto-generated behavioural VCO with performance and variation model")
    lines.append("`include \"constants.vams\"")
    lines.append("`include \"disciplines.vams\"")
    lines.append("")
    lines.append("module vco(out, outmin, outmax, in);")
    lines.append("  output out, outmin, outmax;")
    lines.append("  input in;")
    lines.append("  electrical out, outmin, outmax, in;")
    lines.append(f"  parameter real kvco = {0.5 * (kvco_lo + kvco_hi):.6e};")
    lines.append(f"  parameter real ivco = {0.5 * (ivco_lo + ivco_hi):.6e};")
    lines.append(f"  parameter real ratio = {divide_ratio};")
    lines.append("  parameter real vmin = %g;" % model.vctrl_min)
    lines.append("  parameter real vmax = %g;" % model.vctrl_max)
    lines.append("  parameter real ttol = 1p;")
    lines.append("  parameter integer seed = 286;")
    lines.append("  real kvco_delta, ivco_delta, jvco_delta;")
    lines.append("  real kvco_min, kvco_max, ivco_min, ivco_max;")
    lines.append("  real jvco, jvco_min, jvco_max;")
    lines.append("  real delta, delta_min, delta_max;")
    lines.append("  real dt, dt_min, dt_max, phase, vout, vout_min, vout_max, tt;")
    lines.append("")
    lines.append("  analog begin")
    lines.append(f"    kvco_delta = $table_model(kvco, \"kvco_delta.tbl\", \"{control}\");")
    lines.append(f"    ivco_delta = $table_model(ivco, \"ivco_delta.tbl\", \"{control}\");")
    lines.append("    kvco_min = kvco - ((kvco_delta/100)*kvco);")
    lines.append("    kvco_max = kvco + ((kvco_delta/100)*kvco);")
    lines.append("    ivco_min = ivco - ((ivco_delta/100)*ivco);")
    lines.append("    ivco_max = ivco + ((ivco_delta/100)*ivco);")
    lines.append(
        f"    jvco = $table_model(kvco, ivco, \"jvco_data.tbl\", \"{control},{control}\");"
    )
    lines.append(
        f"    jvco_min = $table_model(kvco_min, ivco_min, \"jvco_data.tbl\", "
        f"\"{control},{control}\");"
    )
    lines.append(
        f"    jvco_max = $table_model(kvco_max, ivco_max, \"jvco_data.tbl\", "
        f"\"{control},{control}\");"
    )
    lines.append("    delta = jvco * sqrt(2 * ratio);")
    lines.append("    delta_min = jvco_min * sqrt(2 * ratio);")
    lines.append("    delta_max = jvco_max * sqrt(2 * ratio);")
    lines.append("    phase = idtmod(kvco * (V(in) - vmin), 0.0, 1.0, -0.5);")
    lines.append("    @(cross(phase - 0.25, +1, ttol)) begin")
    lines.append("      dt = delta * $rdist_normal(seed, 0, 1);")
    lines.append("      dt_min = delta_min * $rdist_normal(seed, 0, 1);")
    lines.append("      dt_max = delta_max * $rdist_normal(seed, 0, 1);")
    lines.append("      vout = (vout > 0.5) ? 0.0 : 1.0;")
    lines.append("      vout_min = vout;")
    lines.append("      vout_max = vout;")
    lines.append("    end")
    lines.append("    tt = 20p;")
    lines.append("    V(out) <+ transition(vout, dt, tt);")
    lines.append("    V(outmin) <+ transition(vout_min, dt_min, tt);")
    lines.append("    V(outmax) <+ transition(vout_max, dt_max, tt);")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_verilog_a(
    model: CombinedPerformanceVariationModel,
    directory: str,
    divide_ratio: int = 24,
    control: str = "3E",
) -> List[str]:
    """Write both generated modules next to the model's ``.tbl`` files."""
    os.makedirs(directory, exist_ok=True)
    files = []
    listing1_path = os.path.join(directory, f"{model.block_name}_perf_var_model.va")
    with open(listing1_path, "w", encoding="utf-8") as handle:
        handle.write(generate_listing1(model, control=control))
    files.append(os.path.basename(listing1_path))
    listing2_path = os.path.join(directory, f"{model.block_name}_behavioural.va")
    with open(listing2_path, "w", encoding="utf-8") as handle:
        handle.write(generate_listing2(model, divide_ratio=divide_ratio, control=control))
    files.append(os.path.basename(listing2_path))
    return files
