"""Circuit-level optimisation stage (steps 1-3 of figure 4).

Defines the VCO sizing problem exactly as section 4.1/4.2 of the paper --
seven designable W/L parameters bounded by the design rules, five
performance functions (maximise gain and maximum frequency, minimise
jitter, current and minimum frequency), tuning-range constraints derived
from the PLL output-frequency specification -- runs NSGA-II on it, and
turns the resulting Pareto front plus per-point Monte Carlo runs into a
:class:`~repro.core.combined_model.CombinedPerformanceVariationModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional

import numpy as np

from repro.circuits.evaluators import VcoEvaluator
from repro.circuits.performance import VcoPerformance
from repro.circuits.topology import CircuitTopology, topology_for_evaluator
from repro.core.combined_model import CombinedPerformanceVariationModel
from repro.core.performance_model import PerformanceModel
from repro.core.specification import SpecificationSet, VCO_RANGE_SPECIFICATIONS
from repro.core.variation_model import VariationModel
from repro.optim import NSGA2, NSGA2Config, Objective, OptimisationResult, Problem
from repro.optim.problem import Evaluation
from repro.process.technology import TECH_012UM, Technology

__all__ = ["VcoSizingProblem", "CircuitStageResult", "CircuitLevelOptimisation"]


class VcoSizingProblem(Problem):
    """The paper's circuit-level multi-objective VCO sizing problem.

    The design space, bounds and default evaluator all come from the
    circuit's registered :class:`~repro.circuits.topology.CircuitTopology`
    (resolved from the evaluator when not given explicitly), so the same
    problem class serves every topology.  The ring keeps its historical
    problem name ``vco_sizing`` -- NSGA-II checkpoint fingerprints include
    it, and pre-seam checkpoints must stay resumable.
    """

    def __init__(
        self,
        evaluator: Optional[VcoEvaluator] = None,
        technology: Technology = TECH_012UM,
        range_specifications: SpecificationSet = VCO_RANGE_SPECIFICATIONS,
        topology: Optional[CircuitTopology] = None,
    ) -> None:
        if topology is None:
            topology = topology_for_evaluator(evaluator)
        self.topology = topology
        self.evaluator = evaluator or topology.analytical_evaluator(technology)
        self.range_specifications = range_specifications
        parameters = topology.optimisation_parameters(technology)
        senses = VcoPerformance.objective_senses()
        objectives = [
            Objective("jitter", senses["jitter"], unit="s"),
            Objective("current", senses["current"], unit="A"),
            Objective("kvco", senses["kvco"], unit="Hz/V"),
            Objective("fmin", senses["fmin"], unit="Hz"),
            Objective("fmax", senses["fmax"], unit="Hz"),
        ]
        constraint_names = [f"range_{spec.name}" for spec in range_specifications]
        name = (
            "vco_sizing"
            if topology.name == "ring-vco"
            else f"vco_sizing[{topology.name}]"
        )
        super().__init__(parameters, objectives, constraint_names, name=name)

    def evaluate(self, values: Mapping[str, float]) -> Evaluation:
        """Evaluate one sizing candidate with the configured evaluator."""
        design = self.topology.design_from_mapping(values)
        performance = self.evaluator.evaluate(design)
        return self._to_evaluation(performance)

    def evaluate_batch(self, vectors) -> List[Evaluation]:
        """Evaluate a whole population of sizing candidates in one call.

        Routes through the evaluator's ``evaluate_batch`` so the
        analytical evaluator can run its numpy kernel over the batch axis;
        evaluators without a native batch path (e.g. the SPICE test bench)
        inherit the generic loop and still work.
        """
        matrix = np.asarray(vectors, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        if matrix.ndim != 2 or matrix.shape[1] != self.n_parameters:
            raise ValueError(
                f"expected a (n, {self.n_parameters}) batch matrix, got shape "
                f"{matrix.shape}"
            )
        self.evaluation_count += matrix.shape[0]
        clipped = self.clip(matrix)
        designs = [
            self.topology.design_from_mapping(dict(zip(self.parameter_names, row)))
            for row in clipped
        ]
        performances = self.evaluator.evaluate_batch(designs)
        return [self._to_evaluation(performance) for performance in performances]

    def _to_evaluation(self, performance: VcoPerformance) -> Evaluation:
        objectives = performance.as_dict()
        constraints = {}
        for spec in self.range_specifications:
            value = objectives[spec.name]
            # g(x) >= 0 convention: the margin to the violated side.
            constraints[f"range_{spec.name}"] = spec.margin(value)
        return Evaluation(objectives=objectives, constraints=constraints)


@dataclass
class CircuitStageResult:
    """Everything produced by the circuit-level stage."""

    optimisation: OptimisationResult
    model: CombinedPerformanceVariationModel
    designs: List[object] = field(default_factory=list)

    @property
    def front_size(self) -> int:
        """Number of Pareto-optimal design points."""
        return len(self.optimisation.front)

    @property
    def evaluations(self) -> int:
        """Total circuit evaluations spent by the optimiser."""
        return self.optimisation.evaluations


class CircuitLevelOptimisation:
    """Run NSGA-II on the VCO and build the combined model.

    Parameters
    ----------
    evaluator:
        VCO evaluator used both by the optimiser and by the Monte Carlo
        runs (the calibrated analytical evaluator by default).
    config:
        NSGA-II settings.  The paper used 100 individuals for 30
        generations; the default here is smaller so tests stay fast --
        benchmarks pass the paper's numbers explicitly.
    mc_samples:
        Monte Carlo samples per Pareto point (100 in the paper).
    max_model_points:
        Upper bound on the number of Pareto points carried into the model
        (the densest-crowding points are kept); ``None`` keeps all.
    mc_batch:
        Run the per-Pareto-point Monte Carlo analyses through the
        evaluator's vectorised batch path.  ``None`` (the default) enables
        it automatically whenever ``config.evaluator`` selects the
        vectorised backend, so one switch vectorises the whole stage.
    topology:
        The :class:`~repro.circuits.topology.CircuitTopology` optimised;
        resolved from the evaluator (or the default ring) when omitted.
    """

    def __init__(
        self,
        evaluator: Optional[VcoEvaluator] = None,
        technology: Technology = TECH_012UM,
        config: Optional[NSGA2Config] = None,
        mc_samples: int = 100,
        mc_seed: int = 2009,
        max_model_points: Optional[int] = 24,
        vctrl_min: float = 0.5,
        vctrl_max: Optional[float] = None,
        mc_batch: Optional[bool] = None,
        topology: Optional[CircuitTopology] = None,
    ) -> None:
        self.technology = technology
        self.topology = topology or topology_for_evaluator(evaluator)
        self.evaluator = evaluator or self.topology.analytical_evaluator(technology)
        self.config = config or NSGA2Config(population_size=40, generations=15)
        self.mc_samples = mc_samples
        self.mc_seed = mc_seed
        self.max_model_points = max_model_points
        self.vctrl_min = vctrl_min
        self.vctrl_max = technology.vdd if vctrl_max is None else vctrl_max
        if mc_batch is None:
            mc_batch = self.config.evaluator.lower() in ("vectorised", "vectorized")
        self.mc_batch = mc_batch

    # -- pieces -------------------------------------------------------------------------

    def optimise(
        self,
        callback: Optional[Callable[[int, list], None]] = None,
        checkpoint: Optional[object] = None,
        cancel: Optional[object] = None,
    ) -> OptimisationResult:
        """Run the multi-objective optimisation (steps 1-2 of figure 4).

        ``checkpoint`` / ``cancel`` are forwarded to
        :meth:`repro.optim.nsga2.NSGA2.run`: the optimiser state is
        persisted per generation and cancellation is observed at those
        generation boundaries.
        """
        problem = VcoSizingProblem(self.evaluator, self.technology, topology=self.topology)
        return NSGA2(problem, self.config).run(
            callback=callback, checkpoint=checkpoint, cancel=cancel
        )

    def build_model(
        self,
        optimisation: OptimisationResult,
        progress: Optional[Callable[[int, int], None]] = None,
        checkpoint: Optional[object] = None,
        cancel: Optional[object] = None,
    ) -> CombinedPerformanceVariationModel:
        """Monte Carlo every Pareto point and assemble the combined model.

        ``checkpoint`` is a duck-typed ``load()/store(state)/clear()``
        store persisting the per-Pareto-point Monte Carlo rows (forwarded
        to :meth:`VariationModel.from_monte_carlo`); each point draws its
        own seeded RNG stream, so a resumed build is bit-identical to an
        uninterrupted one.  ``cancel`` is observed at point boundaries.
        """
        front = optimisation.front.non_dominated()
        if len(front) == 0:
            raise ValueError("the optimisation produced an empty Pareto front")
        individuals = list(front)
        if self.max_model_points is not None and len(individuals) > self.max_model_points:
            # Keep a diverse subset: order by crowding distance (descending).
            individuals = sorted(individuals, key=lambda ind: -ind.crowding)[
                : self.max_model_points
            ]
        designs = [
            self.topology.design_from_mapping(
                dict(zip(front.parameter_names, individual.parameters))
            )
            for individual in individuals
        ]
        nominals = [individual.raw_objectives for individual in individuals]
        performance_model = PerformanceModel(
            parameters=np.vstack([ind.parameters for ind in individuals]),
            performances=np.column_stack(
                [
                    [ind.raw_objectives[name] for ind in individuals]
                    for name in ("kvco", "jitter", "current", "fmin", "fmax")
                ]
            ),
            parameter_names=front.parameter_names,
        )
        variation_model = VariationModel.from_monte_carlo(
            designs=designs,
            nominal_performances=nominals,
            evaluator=self.evaluator,
            n_samples=self.mc_samples,
            seed=self.mc_seed,
            progress=progress,
            use_batch=self.mc_batch,
            checkpoint=checkpoint,
            cancel=cancel,
        )
        return CombinedPerformanceVariationModel(
            performance=performance_model,
            variation=variation_model,
            vctrl_min=self.vctrl_min,
            vctrl_max=self.vctrl_max,
        )

    # -- one-shot ------------------------------------------------------------------------

    def run(
        self,
        callback: Optional[Callable[[int, list], None]] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        checkpoint: Optional[object] = None,
        cancel: Optional[object] = None,
    ) -> CircuitStageResult:
        """Optimise, Monte Carlo and assemble the model in one call.

        With a ``checkpoint``, the NSGA-II loop persists its state per
        generation (and resumes from it); with a ``cancel`` token,
        cancellation is observed at generation boundaries and between the
        optimisation and the Monte Carlo model build.
        """
        optimisation = self.optimise(callback=callback, checkpoint=checkpoint, cancel=cancel)
        if cancel is not None:
            cancel.raise_if_cancelled()
        mc_checkpoint = (
            _ModelBuildCheckpoint(checkpoint) if checkpoint is not None else None
        )
        model = self.build_model(
            optimisation, progress=progress, checkpoint=mc_checkpoint, cancel=cancel
        )
        front = optimisation.front
        designs = [
            self.topology.design_from_mapping(
                dict(zip(front.parameter_names, individual.parameters))
            )
            for individual in front
        ]
        return CircuitStageResult(optimisation=optimisation, model=model, designs=designs)


class _ModelBuildCheckpoint:
    """Sub-key view of the circuit stage's partial checkpoint.

    The NSGA-II loop owns the ``circuit.partial.pkl`` slot; the model
    build's Monte Carlo progress piggybacks on the *same* state dict under
    an ``"mc"`` key (``NSGA2._state_matches`` ignores extra keys, and a
    finished optimiser state is never re-stored on resume, so the two
    never fight).  A crash during the model build therefore loses neither
    the optimisation nor the Monte Carlo points already evaluated.
    """

    def __init__(self, partial: object) -> None:
        self._partial = partial

    def load(self) -> Optional[object]:
        state = self._partial.load()
        if isinstance(state, dict):
            return state.get("mc")
        return None

    def store(self, mc_state: object) -> None:
        state = self._partial.load()
        state = dict(state) if isinstance(state, dict) else {}
        state["mc"] = mc_state
        self._partial.store(state)

    def clear(self) -> None:
        state = self._partial.load()
        if isinstance(state, dict) and "mc" in state:
            state = dict(state)
            del state["mc"]
            self._partial.store(state)
