"""The end-to-end hierarchical optimisation flow (figure 4 of the paper).

:class:`HierarchicalFlow` chains the circuit-level stage, the model
extraction, the system-level stage, the yield verification and (optionally)
the bottom-up verification into one call and collects every intermediate
artefact in a :class:`FlowReport` so examples and benchmarks can reproduce
the paper's tables from a single object.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.behavioural.pll import PllDesign
from repro.circuits.evaluators import VcoEvaluator
from repro.circuits.topology import (
    DEFAULT_TOPOLOGY,
    CircuitTopology,
    get_topology,
    topology_for_evaluator,
)
from repro.core.circuit_stage import CircuitLevelOptimisation, CircuitStageResult
from repro.core.combined_model import CombinedPerformanceVariationModel
from repro.core.corner_sweep import CornerSweepAnalysis, CornerSweepReport
from repro.core.datafile import write_model_directory
from repro.core.codegen import write_verilog_a
from repro.core.specification import PLL_SPECIFICATIONS, SpecificationSet
from repro.core.system_stage import SystemLevelOptimisation, SystemStageResult
from repro.core.verification import BottomUpVerification, VerificationReport
from repro.core.yield_analysis import YieldAnalysis, YieldReport
from repro.optim import NSGA2Config
from repro.process.corners import corner_set
from repro.process.technology import TECH_012UM, Technology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.config import ScenarioConfig

__all__ = [
    "FlowReport",
    "HierarchicalFlow",
    "StageHook",
    "summarise_stage",
    "summarise_generation",
    "summarise_yield_partial",
]

#: Signature of the per-stage checkpoint hook accepted by
#: :meth:`HierarchicalFlow.run`: ``hook(stage_name, artefact)`` is invoked
#: right after each stage completes with one of the stage names
#: ``"circuit"``, ``"system"``, ``"yield"`` or ``"verification"`` and the
#: artefact that stage produced.
StageHook = Callable[[str, object], None]

#: Unit scalings of the selected design's headline objectives, shared by
#: :meth:`FlowReport.summary` and :func:`summarise_stage` so both report
#: the same quantities under the same keys.
_SELECTED_OBJECTIVES = (
    ("lock_time", 1e6, "us"),
    ("jitter", 1e12, "ps"),
    ("current", 1e3, "ma"),
)


def summarise_stage(stage: str, artefact: object) -> Dict[str, float]:
    """Small JSON-compatible progress payload for one stage artefact.

    ``stage_hook`` consumers that persist or transmit progress (the
    experiment service records one event per completed stage) need a flat
    numbers-only view of the artefact rather than the pickled object; this
    is the one place that knows how to produce it for every stage.  Unknown
    stages and artefacts without the expected attributes yield an empty
    payload instead of raising -- progress reporting must never break a run.
    """
    payload: Dict[str, float] = {}

    def put(key: str, value: object) -> None:
        if value is not None:
            payload[key] = float(value)

    if stage == "circuit":
        put("front_size", getattr(artefact, "front_size", None))
        put("evaluations", getattr(artefact, "evaluations", None))
    elif stage == "system":
        put("front_size", getattr(artefact, "front_size", None))
        selected = getattr(artefact, "selected", None)
        if selected is not None:
            put("selected_feasible", selected.is_feasible)
            for objective, scale, suffix in _SELECTED_OBJECTIVES:
                value = selected.raw_objectives.get(objective)
                if value is not None:
                    put(f"selected_{objective}_{suffix}", value * scale)
    elif stage == "corners":
        summary = getattr(artefact, "summary", None)
        if callable(summary):
            for key, value in summary().items():
                put(key, value)
    elif stage == "yield":
        put("yield_percent", getattr(artefact, "yield_percent", None))
        put("n_samples", getattr(artefact, "n_samples", None))
    elif stage == "verification":
        worst = getattr(artefact, "worst_error", None)
        if callable(worst):
            put("worst_error", worst())
    return payload


#: Pareto-front points included in one generation's progress payload; live
#: dashboards need the shape of the front, not every individual of a huge
#: population, and SSE payloads should stay small.
_MAX_FRONT_POINTS = 64


def summarise_generation(state: Dict[str, object]) -> Dict[str, object]:
    """Progress payload for one persisted NSGA-II generation checkpoint.

    Built from the optimiser's checkpoint state (generation number,
    ranked population, evaluation count -- see :meth:`NSGA2.run`), this is
    what the experiment service streams to live subscribers after every
    generation: enough to draw the current Pareto front without shipping
    the population.  ``front`` holds the rank-0 individuals' raw
    objectives (natural units and sense), feasible ones first, capped at
    ``_MAX_FRONT_POINTS``.  Defensive like :func:`summarise_stage`:
    malformed state yields a minimal payload instead of raising.
    """
    payload: Dict[str, object] = {
        "generation": int(state.get("generation", 0)),
        "evaluations": int(state.get("evaluations", 0)),
    }
    population = state.get("population") or []
    front = [ind for ind in population if getattr(ind, "rank", None) == 0]
    front.sort(key=lambda ind: not ind.is_feasible)  # stable: feasible first
    payload["front_size"] = len(front)
    payload["feasible"] = sum(1 for ind in front if ind.is_feasible)
    payload["front"] = [
        {name: float(value) for name, value in ind.raw_objectives.items()}
        for ind in front[:_MAX_FRONT_POINTS]
    ]
    return payload


def summarise_yield_partial(
    state: Dict[str, object],
    n_samples: int,
    specifications: SpecificationSet,
) -> Dict[str, object]:
    """Progress payload for one persisted Monte Carlo batch checkpoint.

    The yield stage's checkpoint state carries the performance samples
    drawn so far (see :meth:`YieldAnalysis.run`); the running yield
    estimate over those samples is what the dashboard's convergence plot
    streams.  ``yield_percent_so_far`` is ``None`` until the first sample
    lands.
    """
    samples = state.get("samples") or []
    passed = sum(1 for sample in samples if not specifications.violations(sample))
    done = len(samples)
    return {
        "samples_done": done,
        "n_samples": int(n_samples),
        "yield_percent_so_far": (100.0 * passed / done) if done else None,
    }


@dataclass
class FlowReport:
    """All artefacts produced by one hierarchical flow run."""

    circuit_stage: CircuitStageResult
    system_stage: SystemStageResult
    yield_report: Optional[YieldReport] = None
    verification: Optional[VerificationReport] = None
    model_directory: Optional[str] = None
    generated_files: List[str] = field(default_factory=list)
    corner_report: Optional[CornerSweepReport] = None

    @property
    def model(self) -> CombinedPerformanceVariationModel:
        """The combined performance + variation model of the VCO."""
        return self.circuit_stage.model

    @property
    def selected_values(self) -> Dict[str, float]:
        """The selected system-level design parameters."""
        return self.system_stage.selected_values

    def summary(self) -> Dict[str, float]:
        """Headline numbers of the run (front sizes, yield, spec status)."""
        summary: Dict[str, float] = {
            "circuit_front_size": float(self.circuit_stage.front_size),
            "circuit_evaluations": float(self.circuit_stage.evaluations),
            "system_front_size": float(self.system_stage.front_size),
        }
        selected = self.system_stage.selected
        if selected is not None:
            for objective, scale, suffix in _SELECTED_OBJECTIVES:
                summary[f"selected_{objective}_{suffix}"] = (
                    selected.raw_objectives[objective] * scale
                )
            summary["selected_feasible"] = float(selected.is_feasible)
        if self.yield_report is not None:
            summary["yield_percent"] = self.yield_report.yield_percent
            summary["yield_samples"] = float(self.yield_report.n_samples)
        if self.verification is not None:
            summary["verification_worst_error"] = self.verification.worst_error()
        if self.corner_report is not None:
            for key, value in self.corner_report.summary().items():
                summary[f"corners_{key}"] = value
        return summary


class HierarchicalFlow:
    """Top-down, yield-aware hierarchical optimisation of the PLL.

    ``evaluation`` selects the batch-evaluation backend applied across the
    whole flow (``"serial"``, ``"vectorised"`` or ``"process"``, see
    :mod:`repro.optim.evaluation`): it configures both NSGA-II stages
    (the system stage included, via the lane-parallel PLL transient
    engine) and -- for ``"vectorised"`` -- routes the per-Pareto-point
    Monte Carlo analyses and the final yield verification through the
    evaluators' batch paths.  ``n_workers`` sizes the ``"process"``
    backend's pool and, when a :class:`RingVcoSpiceEvaluator` without an
    explicit worker count drives the flow, its batch pool too.  Explicitly
    passed stage configs keep their own settings.  The default stays
    ``"serial"`` so seeded historical results are bit-identical.

    ``n_stages`` selects the ring length of the VCO (odd, >= 3; the paper
    uses five stages) when no explicit evaluator is passed; an explicitly
    passed evaluator carries its own stage count and wins.  The configured
    ring length also sizes the mismatch-geometry lists used by every Monte
    Carlo analysis in the flow.

    Instead of assembling the constructor arguments by hand, a flow can be
    built from a declarative :class:`~repro.experiments.config.ScenarioConfig`
    via :meth:`from_scenario` -- that is how the ``repro`` experiment runner
    constructs flows.
    """

    def __init__(
        self,
        technology: Technology = TECH_012UM,
        evaluator: Optional[VcoEvaluator] = None,
        circuit_config: Optional[NSGA2Config] = None,
        system_config: Optional[NSGA2Config] = None,
        specifications: SpecificationSet = PLL_SPECIFICATIONS,
        base_pll_design: Optional[PllDesign] = None,
        mc_samples_per_point: int = 100,
        yield_samples: int = 500,
        max_model_points: Optional[int] = 24,
        seed: int = 2009,
        evaluation: str = "serial",
        n_workers: Optional[int] = None,
        n_stages: Optional[int] = None,
        spice_engine: str = "reference",
        topology: str = DEFAULT_TOPOLOGY,
        corners: str = "",
    ) -> None:
        if n_workers is not None and n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        from repro.spice.plan import ENGINES

        if spice_engine not in ENGINES:
            raise ValueError(f"unknown spice_engine {spice_engine!r}; choose from {ENGINES}")
        self.spice_engine = spice_engine
        self.technology = technology
        # An explicitly passed evaluator wins the topology resolution (it
        # carries its registry key as a class attribute); otherwise the
        # ``topology`` name selects the circuit family and its evaluator.
        if evaluator is not None:
            self.topology: CircuitTopology = topology_for_evaluator(evaluator)
        else:
            self.topology = get_topology(topology)
        self.evaluator = evaluator or self.topology.analytical_evaluator(
            technology, n_stages=n_stages
        )
        # An explicitly passed evaluator carries its own ring length.
        self.n_stages = getattr(
            self.evaluator, "n_stages", self.topology.resolve_n_stages(n_stages)
        )
        self.evaluation = evaluation
        self.n_workers = n_workers
        # The process backend's worker-count plumbing also sizes the SPICE
        # evaluator's own batch pool.  The flow works on a configured copy
        # so the caller's evaluator (possibly shared between flows with
        # different worker counts) is never mutated.
        if (
            n_workers is not None
            and getattr(self.evaluator, "n_workers", False) is None
        ):
            self.evaluator = copy.copy(self.evaluator)
            self.evaluator.n_workers = n_workers
        self.circuit_config = circuit_config or NSGA2Config(
            population_size=40, generations=15, evaluator=evaluation, n_workers=n_workers
        )
        # Both stages honour the selected backend: since the behavioural
        # PLL transient gained a lane-parallel batch engine, "vectorised"
        # accelerates the system stage too (bit-identical fronts).
        self.system_config = system_config or NSGA2Config(
            population_size=24,
            generations=10,
            evaluator=evaluation,
            n_workers=n_workers,
        )
        self.specifications = specifications
        self.base_pll_design = base_pll_design or PllDesign()
        self.mc_samples_per_point = mc_samples_per_point
        self.yield_samples = yield_samples
        self.max_model_points = max_model_points
        self.seed = seed
        #: Name of the corner set swept after the circuit stage ("" skips
        #: the sweep entirely -- the historical behaviour).
        self.corners = corners
        #: Defaults applied when :meth:`run` is called without explicit
        #: ``run_yield`` / ``run_verification`` arguments; overwritten by
        #: :meth:`from_scenario` so a scenario's stage selection is honoured.
        self.default_run_yield = True
        self.default_run_verification = False

    @classmethod
    def from_scenario(
        cls, scenario: "ScenarioConfig", evaluator: Optional[VcoEvaluator] = None
    ) -> "HierarchicalFlow":
        """Build a flow from a declarative scenario configuration.

        Parameters
        ----------
        scenario:
            A frozen :class:`~repro.experiments.config.ScenarioConfig`;
            its registry keys (technology, specification set) are resolved
            here and its NSGA-II / Monte Carlo budgets become the stage
            configurations.
        evaluator:
            Optional evaluator override (e.g. a
            :class:`~repro.circuits.evaluators.RingVcoSpiceEvaluator` for a
            ground-truth run).  Defaults to the calibrated analytical
            evaluator built for the scenario's technology and ring length.

        Returns
        -------
        HierarchicalFlow
            A ready-to-run flow; two flows built from equal scenarios
            produce bit-identical artefacts.  The scenario's ``run_yield``
            / ``run_verification`` selections become :meth:`run`'s
            defaults, so ``from_scenario(s).run()`` executes exactly the
            stages the scenario declares.
        """
        technology = scenario.resolve_technology()
        flow = cls(
            technology=technology,
            evaluator=evaluator,
            circuit_config=scenario.circuit_nsga2_config(),
            system_config=scenario.system_nsga2_config(),
            specifications=scenario.resolve_specifications(),
            mc_samples_per_point=scenario.mc_samples_per_point,
            yield_samples=scenario.yield_samples,
            max_model_points=scenario.max_model_points,
            seed=scenario.seed,
            evaluation=scenario.evaluation,
            n_workers=scenario.n_workers,
            n_stages=scenario.n_stages,
            spice_engine=scenario.spice_engine,
            topology=scenario.topology,
            corners=scenario.corners,
        )
        flow.default_run_yield = scenario.run_yield
        flow.default_run_verification = scenario.run_verification
        return flow

    @property
    def _use_batch_mc(self) -> bool:
        """Whether Monte Carlo analyses should use the batch path."""
        return self.evaluation.lower() in ("vectorised", "vectorized")

    # -- stages --------------------------------------------------------------------------

    def circuit_stage(
        self,
        progress: Optional[Callable[[int, int], None]] = None,
        checkpoint: Optional[object] = None,
        cancel: Optional[object] = None,
    ) -> CircuitStageResult:
        """Circuit-level optimisation and combined-model extraction.

        ``checkpoint`` (duck-typed ``load()/store(state)/clear()``) makes
        the NSGA-II loop persist its state per generation and resume from
        it; ``cancel`` (a :class:`~repro.cancel.CancelToken`) is observed
        at those generation boundaries.
        """
        stage = CircuitLevelOptimisation(
            evaluator=self.evaluator,
            technology=self.technology,
            config=self.circuit_config,
            mc_samples=self.mc_samples_per_point,
            mc_seed=self.seed,
            max_model_points=self.max_model_points,
            mc_batch=self._use_batch_mc,
            topology=self.topology,
        )
        return stage.run(progress=progress, checkpoint=checkpoint, cancel=cancel)

    def system_stage(
        self,
        model: CombinedPerformanceVariationModel,
        cancel: Optional[object] = None,
    ) -> SystemStageResult:
        """System-level optimisation on the behavioural PLL."""
        stage = SystemLevelOptimisation(
            model,
            specifications=self.specifications,
            base_design=self.base_pll_design,
            config=self.system_config,
        )
        return stage.run(cancel=cancel)

    def verify_yield(
        self,
        model: CombinedPerformanceVariationModel,
        selected_values: Dict[str, float],
        checkpoint: Optional[object] = None,
        batch_size: Optional[int] = None,
        cancel: Optional[object] = None,
    ) -> YieldReport:
        """Monte Carlo yield verification of the selected design.

        ``checkpoint`` / ``batch_size`` enable mid-stage checkpointing of
        the Monte Carlo batches (see :meth:`YieldAnalysis.run`); the batch
        size never changes the result, only how often progress persists.
        ``cancel`` is observed at those batch boundaries.
        """
        analysis = YieldAnalysis(
            model,
            evaluator=self.evaluator,
            specifications=self.specifications,
            n_samples=self.yield_samples,
            seed=self.seed + 1,
            use_batch=self._use_batch_mc,
        )
        return analysis.run(
            selected_values, checkpoint=checkpoint, batch_size=batch_size, cancel=cancel
        )

    def spice_evaluator(self) -> VcoEvaluator:
        """A transistor-level evaluator matching this flow's configuration.

        Carries the flow's topology, technology, ring length, worker count
        and the configured :attr:`spice_engine` -- pass it to
        :meth:`verification_stage` (or :meth:`run`) as the
        ``verification_evaluator`` to verify against the MNA test bench
        instead of the analytical evaluator.  Kept out of the default
        verification path so existing artefacts stay byte-identical.
        """
        return self.topology.spice_evaluator(
            self.technology,
            n_stages=self.n_stages,
            n_workers=self.n_workers,
            engine=self.spice_engine,
        )

    def corner_stage(
        self,
        circuit: CircuitStageResult,
        corners: str,
        cancel: Optional[object] = None,
    ) -> CornerSweepReport:
        """Re-evaluate the circuit-stage Pareto designs across a corner set.

        ``corners`` names a registered corner set (see
        :func:`repro.process.corners.corner_set`); the report carries one
        re-evaluated front per corner plus the worst-case-corner front.
        """
        analysis = CornerSweepAnalysis(
            evaluator=self.evaluator,
            technology=self.technology,
            corners=corner_set(corners),
            use_batch=self._use_batch_mc,
        )
        return analysis.run(circuit, cancel=cancel)

    def verification_stage(
        self,
        model: CombinedPerformanceVariationModel,
        verification_evaluator: Optional[VcoEvaluator] = None,
        max_points: int = 3,
    ) -> VerificationReport:
        """Bottom-up verification of the combined model (optional stage).

        Shared by :meth:`run` and the experiment runner so both execute
        the identical verification for a given configuration.
        """
        verifier = BottomUpVerification(
            model, reference_evaluator=verification_evaluator or self.evaluator
        )
        return verifier.verify_model_points(max_points=max_points)

    def export_model(
        self, model: CombinedPerformanceVariationModel, output_directory: str
    ) -> tuple[str, List[str]]:
        """Write the model's ``.tbl`` files and Verilog-A under ``output_directory``.

        Returns the model directory and the list of generated files.
        Shared by :meth:`run` and the experiment runner so both export the
        identical artefacts (including the divide-ratio plumbing).
        """
        model_directory = os.path.join(output_directory, "vco_model")
        generated = list(write_model_directory(model, model_directory))
        generated.extend(
            write_verilog_a(
                model,
                model_directory,
                divide_ratio=self.base_pll_design.divide_ratio,
            )
        )
        return model_directory, generated

    # -- one-shot -------------------------------------------------------------------------

    def run(
        self,
        output_directory: Optional[str] = None,
        run_yield: Optional[bool] = None,
        run_verification: Optional[bool] = None,
        verification_evaluator: Optional[VcoEvaluator] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        stage_hook: Optional[StageHook] = None,
        cancel: Optional[object] = None,
    ) -> FlowReport:
        """Execute the full flow and optionally export the model artefacts.

        ``run_yield`` / ``run_verification`` select the optional stages;
        ``None`` (the default) falls back to :attr:`default_run_yield` /
        :attr:`default_run_verification` (yield on, verification off --
        or whatever the scenario declared when the flow was built via
        :meth:`from_scenario`).

        ``stage_hook(stage_name, artefact)`` -- when given -- is invoked
        right after each stage completes (``"circuit"``, ``"system"``,
        ``"yield"``, ``"verification"``), letting callers checkpoint or
        inspect intermediate artefacts without the flow knowing anything
        about caching.  (The experiment runner drives the stages
        individually so it can also *skip* cached ones; it shares this
        class's stage methods rather than this loop.)

        ``cancel`` -- a :class:`~repro.cancel.CancelToken` -- is observed
        at stage and optimiser-generation boundaries and raises
        :class:`~repro.cancel.JobCancelled` there.
        """
        run_yield = self.default_run_yield if run_yield is None else run_yield
        if run_verification is None:
            run_verification = self.default_run_verification

        def checkpoint(stage: str, artefact: object) -> None:
            if stage_hook is not None:
                stage_hook(stage, artefact)

        circuit = self.circuit_stage(progress=progress, cancel=cancel)
        checkpoint("circuit", circuit)
        corner_report = None
        if self.corners:
            corner_report = self.corner_stage(circuit, self.corners, cancel=cancel)
            checkpoint("corners", corner_report)
        system = self.system_stage(circuit.model, cancel=cancel)
        checkpoint("system", system)
        yield_report = None
        if run_yield and system.selected is not None:
            yield_report = self.verify_yield(
                circuit.model, system.selected_values, cancel=cancel
            )
            checkpoint("yield", yield_report)
        verification = None
        if run_verification:
            verification = self.verification_stage(
                circuit.model, verification_evaluator=verification_evaluator
            )
            checkpoint("verification", verification)
        generated: List[str] = []
        model_directory = None
        if output_directory is not None:
            model_directory, generated = self.export_model(circuit.model, output_directory)
        return FlowReport(
            circuit_stage=circuit,
            system_stage=system,
            yield_report=yield_report,
            verification=verification,
            model_directory=model_directory,
            generated_files=generated,
            corner_report=corner_report,
        )
