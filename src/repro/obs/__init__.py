"""Observability substrate: span tracing and a metrics registry.

Two stdlib-only pillars shared by every layer of the project:

* :mod:`repro.obs.trace` -- context-manager spans recorded under a job's
  trace (trace id = the scenario's config hash), safe across threads and
  :class:`~concurrent.futures.ProcessPoolExecutor` workers, persisted as
  ``trace.jsonl`` next to the stage pickles.
* :mod:`repro.obs.metrics` -- counters / gauges / histograms with
  Prometheus text exposition, served at ``GET /v1/metrics``.

Hard invariant: observability on or off never changes artefact bytes.
Spans and metrics only *observe* the flow -- they never feed back into
any computation, RNG stream or pickled artefact (enforced by tests and
by the ``bench_obs_overhead`` benchmark's < 3 % gate).

Everything is disabled in one move with ``REPRO_OBS=0``.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    render_prometheus,
)
from repro.obs.trace import (
    Trace,
    collect_spans,
    current_trace,
    enabled,
    merge_spans,
    span,
    spans_from_jsonl,
    spans_to_jsonl,
    start_trace,
    trace_context,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Trace",
    "collect_spans",
    "current_trace",
    "enabled",
    "get_registry",
    "merge_spans",
    "render_prometheus",
    "span",
    "spans_from_jsonl",
    "spans_to_jsonl",
    "start_trace",
    "trace_context",
]
