"""Counter / gauge / histogram registry with Prometheus text exposition.

A deliberately small, stdlib-only subset of the Prometheus client data
model -- enough to answer "how many", "how big right now" and "how is
the latency distributed" for every layer of the service:

* :class:`Counter` -- monotonically increasing (claims, outcomes,
  retries, swallowed errors, bytes moved, evaluations per backend).
* :class:`Gauge` -- a value that goes both ways (queue depths, pool
  sizes, job-state counts).
* :class:`Histogram` -- cumulative buckets plus ``_sum``/``_count``
  (route latencies, artifact transfer sizes).

Metrics are **per process**: each worker process and the coordinator
own a private registry, and ``GET /v1/metrics`` exposes the serving
process's registry combined with store-derived job-state gauges (the
SQLite store is the cross-process source of truth).  Registration is
idempotent -- asking for an existing name returns the same instance --
so call sites just declare what they need at import time.

Exposition follows the Prometheus text format, version 0.0.4:
``# HELP`` / ``# TYPE`` headers, one sample per line, labels sorted.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "render_prometheus",
]

#: Default histogram buckets (seconds), tuned for route/stage latencies.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

_VALID_FIRST = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")


class _Metric:
    """Shared labelled-sample storage for all three metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, label_names: Sequence[str] = ()) -> None:
        if not name or name[0] not in _VALID_FIRST:
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._samples: Dict[Tuple[str, ...], Any] = {}

    def _key(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def samples(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """A sorted snapshot of ``(label_values, value)`` pairs."""
        with self._lock:
            return sorted(self._samples.items())


class Counter(_Metric):
    """A monotonically increasing counter."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._samples.get(self._key(labels), 0.0))


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._samples.get(self._key(labels), 0.0))


class Histogram(_Metric):
    """Cumulative-bucket histogram with ``_sum`` and ``_count``."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, label_names)
        self.buckets = tuple(sorted(float(edge) for edge in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket edge")

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        index = bisect_right(self.buckets, float(value))
        with self._lock:
            state = self._samples.get(key)
            if state is None:
                state = self._samples[key] = {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
            state["counts"][index] += 1
            state["sum"] += float(value)
            state["count"] += 1

    def count(self, **labels: Any) -> int:
        with self._lock:
            state = self._samples.get(self._key(labels))
            return int(state["count"]) if state else 0


class MetricsRegistry:
    """A named collection of metrics; registration is idempotent."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _register(self, cls, name: str, help_text: str, label_names, **kwargs) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, help_text, label_names, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "", label_names: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help_text, label_names)

    def gauge(self, name: str, help_text: str = "", label_names: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help_text, label_names)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help_text, label_names, buckets=buckets)

    def metrics(self) -> List[_Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Drop every metric (test isolation only)."""
        with self._lock:
            self._metrics.clear()


#: The process-wide default registry.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(float(value))


def _label_string(names: Iterable[str], values: Iterable[str], extra: str = "") -> str:
    pairs = [f'{name}="{_escape_label(value)}"' for name, value in zip(names, values)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Render a registry in the Prometheus text exposition format."""
    registry = registry or _REGISTRY
    lines: List[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for values, state in metric.samples():
                cumulative = 0
                for edge, bucket_count in zip(metric.buckets, state["counts"]):
                    cumulative += bucket_count
                    labels = _label_string(
                        metric.label_names, values, f'le="{_format_value(edge)}"'
                    )
                    lines.append(f"{metric.name}_bucket{labels} {cumulative}")
                labels = _label_string(metric.label_names, values, 'le="+Inf"')
                lines.append(f"{metric.name}_bucket{labels} {state['count']}")
                labels = _label_string(metric.label_names, values)
                lines.append(f"{metric.name}_sum{labels} {_format_value(state['sum'])}")
                lines.append(f"{metric.name}_count{labels} {state['count']}")
        else:
            for values, value in metric.samples():
                labels = _label_string(metric.label_names, values)
                lines.append(f"{metric.name}{labels} {_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")
