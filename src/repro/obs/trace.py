"""Stdlib-only span tracer for the hierarchical flow.

A *trace* is the set of spans recorded while one job executes; its id is
the job's config hash, so the trace is content-addressed exactly like
the stage artefacts it describes.  A *span* is one timed region -- a
flow stage, an NSGA-II generation, a Monte Carlo batch, a SPICE chunk,
a checkpoint write, a coordinator round-trip -- with a name, a wall
clock start, a monotonic duration, free-form attributes and a parent
span id (``None`` for roots).

Design constraints, in decreasing order of importance:

* **Zero interference**: tracing must never change artefact bytes.
  Spans only read clocks; they never touch the values or RNG streams
  they observe.  With no active trace (or ``REPRO_OBS=0``)
  :func:`span` is a no-op costing one attribute read.
* **Thread safety**: the runner's heartbeat and server threads record
  into the same active trace; parentage is tracked per thread.
* **Process safety**: a ``ProcessPoolExecutor`` worker has no access to
  the parent's trace.  The parent captures :func:`trace_context` and
  ships it with the task; the child records into a throwaway trace via
  :func:`collect_spans` and returns the span records alongside its
  results; the parent folds them back with :func:`merge_spans`.
* **Wire format**: one JSON object per line (``trace.jsonl``), sorted
  by start time -- trivially greppable, streamable and mergeable.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional

__all__ = [
    "Trace",
    "collect_spans",
    "current_trace",
    "enabled",
    "merge_spans",
    "span",
    "spans_from_jsonl",
    "spans_to_jsonl",
    "start_trace",
    "trace_context",
]

#: Environment kill switch: ``REPRO_OBS=0`` disables all tracing.
_OBS_ENV = "REPRO_OBS"

#: Module-global active trace (one job at a time per process -- the
#: worker model) plus per-thread span stacks for parentage.
_active_lock = threading.Lock()
_active_trace: Optional["Trace"] = None
_thread_state = threading.local()


def enabled() -> bool:
    """Whether observability is enabled (``REPRO_OBS`` not falsy)."""
    return os.environ.get(_OBS_ENV, "1") not in ("", "0", "false", "False")


class Trace:
    """A mutable collection of span records under one trace id."""

    def __init__(self, trace_id: str) -> None:
        self.trace_id = str(trace_id)
        #: Owning process: a forked pool worker inherits the parent's
        #: active trace object, and the pid is how it tells the copy
        #: apart from a trace it activated itself.
        self.pid = os.getpid()
        self._lock = threading.Lock()
        self._records: List[Dict[str, Any]] = []
        self._next_id = 0

    def new_span_id(self) -> str:
        """A process-unique span id (``<pid>-<counter>``)."""
        with self._lock:
            self._next_id += 1
            return f"{os.getpid():x}-{self._next_id:x}"

    def add(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)

    def extend(self, records: Iterable[Dict[str, Any]]) -> None:
        with self._lock:
            self._records.extend(records)

    @property
    def spans(self) -> List[Dict[str, Any]]:
        """A snapshot of the recorded spans, sorted by wall start."""
        with self._lock:
            return sorted(self._records, key=lambda r: (r.get("start", 0.0), r["span_id"]))


def current_trace() -> Optional[Trace]:
    """The process's active trace, or ``None``."""
    return _active_trace


def _span_stack() -> List[str]:
    stack = getattr(_thread_state, "stack", None)
    if stack is None:
        stack = _thread_state.stack = []
    return stack


@contextmanager
def start_trace(trace_id: str) -> Iterator[Optional[Trace]]:
    """Activate a trace for the duration of the ``with`` block.

    Yields the :class:`Trace` (or ``None`` when observability is
    disabled or another trace is already active -- nested activations
    are ignored so e.g. a locally-run runner inside an already-traced
    worker contributes to the outer trace instead of clobbering it).
    """
    global _active_trace
    if not enabled():
        yield None
        return
    with _active_lock:
        if _active_trace is not None:
            owned = False
        else:
            _active_trace = Trace(trace_id)
            owned = True
    try:
        yield _active_trace if owned else None
    finally:
        if owned:
            with _active_lock:
                _active_trace = None


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Optional[Dict[str, Any]]]:
    """Record one timed span into the active trace (no-op without one).

    Yields the span's attribute dict so the body can attach facts it
    only learns while running (``attrs["source"] = "cached"``); with no
    active trace it yields ``None`` and records nothing.
    """
    trace = _active_trace
    if trace is None:
        yield None
        return
    stack = _span_stack()
    span_id = trace.new_span_id()
    parent_id = stack[-1] if stack else None
    stack.append(span_id)
    wall_start = time.time()
    started = time.perf_counter()
    try:
        yield attrs
    finally:
        duration = time.perf_counter() - started
        stack.pop()
        record: Dict[str, Any] = {
            "trace_id": trace.trace_id,
            "span_id": span_id,
            "parent_id": parent_id,
            "name": name,
            "start": wall_start,
            "duration": duration,
            "pid": os.getpid(),
            "thread": threading.current_thread().name,
        }
        if attrs:
            record["attrs"] = attrs
        trace.add(record)


def current_span_id() -> Optional[str]:
    """The innermost open span's id in this thread, or ``None``."""
    trace = _active_trace
    if trace is None:
        return None
    stack = _span_stack()
    return stack[-1] if stack else None


def trace_context() -> Optional[Dict[str, Any]]:
    """The propagation context to ship to another process (or host).

    ``None`` when no trace is active, else a JSON-compatible dict the
    receiving side feeds to :func:`collect_spans`.
    """
    trace = _active_trace
    if trace is None:
        return None
    return {"trace_id": trace.trace_id, "parent_id": current_span_id()}


@contextmanager
def collect_spans(context: Optional[Dict[str, Any]]) -> Iterator[List[Dict[str, Any]]]:
    """Record spans in a child process and hand them back as records.

    Activates a throwaway trace built from a parent's
    :func:`trace_context`; on exit the yielded list holds the recorded
    span dicts (re-parented under ``context["parent_id"]``) for the
    child to return with its results.  With ``context=None`` the block
    records nothing and yields an empty list.
    """
    global _active_trace
    records: List[Dict[str, Any]] = []
    if not context or not enabled():
        yield records
        return
    with _active_lock:
        if _active_trace is not None and _active_trace.pid == os.getpid():
            # Already tracing in this very process (in-process executor):
            # spans record directly into the active trace, nothing to
            # hand back.
            yield records
            return
        # A fresh child (spawn) or a forked child that inherited the
        # parent's active trace object: collect into a private trace --
        # records added to the inherited copy would never travel back.
        trace = _active_trace = Trace(str(context["trace_id"]))
    # A forked child also inherits the forking thread's open-span stack;
    # clear it so the child's roots re-parent under the shipped context.
    _thread_state.stack = []
    parent_id = context.get("parent_id")
    try:
        yield records
    finally:
        with _active_lock:
            _active_trace = None
        for record in trace.spans:
            if record.get("parent_id") is None:
                record["parent_id"] = parent_id
            records.append(record)


def merge_spans(records: Optional[Iterable[Dict[str, Any]]]) -> None:
    """Fold child-process span records into the active trace."""
    trace = _active_trace
    if trace is None or not records:
        return
    trace.extend(records)


# -- wire format -------------------------------------------------------------------------


def spans_to_jsonl(records: Iterable[Dict[str, Any]]) -> str:
    """Serialise span records as one compact JSON object per line."""
    lines = [
        json.dumps(record, sort_keys=True, separators=(",", ":"), default=str)
        for record in records
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def spans_from_jsonl(text: str) -> List[Dict[str, Any]]:
    """Parse a ``trace.jsonl`` payload, skipping unparseable lines."""
    records: List[Dict[str, Any]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and "span_id" in record:
            records.append(record)
    return records
