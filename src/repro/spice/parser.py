"""SPICE-like netlist text parser.

Supports the subset of SPICE syntax needed for the test benches and the
examples:

* element cards ``R``, ``C``, ``L``, ``V``, ``I``, ``E`` (VCVS), ``G``
  (VCCS), ``D`` and ``M`` (MOSFET),
* ``.model`` cards for ``nmos``, ``pmos`` and ``d`` models,
* engineering suffixes (``k``, ``meg``, ``m``, ``u``, ``n``, ``p``, ``f``),
* ``PULSE(...)``, ``SIN(...)`` and ``PWL(...)`` source waveforms,
* ``*`` / ``;`` comments, ``+`` continuation lines and ``.end``.

The first line is treated as the title, following SPICE convention, unless
it starts with a recognised card.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Tuple

from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    Diode,
    Inductor,
    PulseWaveform,
    PWLWaveform,
    Resistor,
    SineWaveform,
    VCCS,
    VCVS,
    VoltageSource,
)
from repro.spice.exceptions import NetlistError
from repro.spice.mosfet import MOSFET, MOSFETModel, NMOS_DEFAULT, PMOS_DEFAULT
from repro.spice.netlist import Circuit

__all__ = ["parse_netlist", "parse_value"]

_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}

_VALUE_RE = re.compile(r"^([+-]?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)([a-zA-Z]*)$")


def parse_value(token: str) -> float:
    """Parse a SPICE numeric token with an optional engineering suffix."""
    token = token.strip()
    match = _VALUE_RE.match(token)
    if not match:
        raise NetlistError(f"cannot parse numeric value {token!r}")
    number = float(match.group(1))
    suffix = match.group(2).lower()
    if not suffix:
        return number
    if suffix.startswith("meg"):
        return number * _SUFFIXES["meg"]
    if suffix[0] in _SUFFIXES:
        return number * _SUFFIXES[suffix[0]]
    # Unknown trailing unit text (e.g. "5v", "2ohm") -- take the number.
    return number


def _strip_comments(text: str) -> List[str]:
    lines: List[str] = []
    for raw in text.splitlines():
        line = raw.split(";")[0].rstrip()
        if not line.strip():
            continue
        if line.lstrip().startswith("*"):
            continue
        lines.append(line)
    # Merge continuation lines starting with '+'.
    merged: List[str] = []
    for line in lines:
        if line.lstrip().startswith("+") and merged:
            merged[-1] += " " + line.lstrip()[1:]
        else:
            merged.append(line)
    return merged


def _split_params(tokens: Sequence[str]) -> Tuple[List[str], Dict[str, str]]:
    positional: List[str] = []
    named: Dict[str, str] = {}
    for token in tokens:
        if "=" in token:
            key, value = token.split("=", 1)
            named[key.strip().lower()] = value.strip()
        else:
            positional.append(token)
    return positional, named


def _parse_waveform(spec: str):
    text = spec.strip()
    upper = text.upper()
    for keyword, cls in (("PULSE", PulseWaveform), ("SIN", SineWaveform), ("PWL", PWLWaveform)):
        if upper.startswith(keyword):
            inner = text[len(keyword):].strip()
            if inner.startswith("(") and inner.endswith(")"):
                inner = inner[1:-1]
            values = [parse_value(tok) for tok in inner.replace(",", " ").split()]
            if cls is PulseWaveform:
                if len(values) < 2:
                    raise NetlistError(f"PULSE needs at least v1 and v2: {spec!r}")
                defaults = [0.0, 0.0, 0.0, 1e-12, 1e-12, 1e-9, 2e-9]
                padded = (values + defaults[len(values):])[:7]
                return PulseWaveform(*padded)
            if cls is SineWaveform:
                if len(values) < 3:
                    raise NetlistError(f"SIN needs offset, amplitude and frequency: {spec!r}")
                return SineWaveform(*values[:5])
            pairs = list(zip(values[0::2], values[1::2]))
            return PWLWaveform(pairs)
    # Plain DC value, possibly prefixed with the keyword DC.
    tokens = text.split()
    if tokens and tokens[0].upper() == "DC" and len(tokens) > 1:
        return parse_value(tokens[1])
    return parse_value(tokens[0])


def _normalise_source_spec(tokens: Sequence[str]) -> str:
    return " ".join(tokens)


def _build_model(name: str, kind: str, params: Dict[str, str]) -> MOSFETModel:
    kind = kind.lower()
    base = NMOS_DEFAULT if kind == "nmos" else PMOS_DEFAULT
    overrides = {}
    mapping = {
        "vto": "vth0",
        "vth0": "vth0",
        "u0": "u0",
        "tox": "tox",
        "lambda": "lambda_",
        "gamma": "gamma",
        "phi": "phi",
        "cgso": "cgso",
        "cgdo": "cgdo",
        "cj": "cj",
        "ld": "ld",
    }
    for key, value in params.items():
        if key in mapping:
            parsed = parse_value(value)
            if key in ("vto", "vth0"):
                parsed = abs(parsed)
            overrides[mapping[key]] = parsed
    return base.with_variation(name=name, **overrides)


def parse_netlist(text: str, title: str | None = None) -> Circuit:
    """Parse a SPICE-like netlist string into a :class:`Circuit`."""
    lines = _strip_comments(text)
    if not lines:
        raise NetlistError("netlist is empty")
    first = lines[0].split()[0].upper()
    known_prefix = first[0] in "RCLVIEGDM." if first else False
    if title is None and not known_prefix:
        title = lines[0].strip()
        lines = lines[1:]
    circuit = Circuit(title or "")
    mos_models: Dict[str, MOSFETModel] = {
        "nmos": NMOS_DEFAULT,
        "pmos": PMOS_DEFAULT,
        NMOS_DEFAULT.name: NMOS_DEFAULT,
        PMOS_DEFAULT.name: PMOS_DEFAULT,
    }
    diode_models: Dict[str, Dict[str, float]] = {}
    pending_mosfets: List[Tuple[List[str], Dict[str, str]]] = []
    pending_diodes: List[List[str]] = []

    for line in lines:
        tokens = line.split()
        card = tokens[0]
        upper = card.upper()
        if upper.startswith(".END"):
            break
        if upper.startswith(".MODEL"):
            if len(tokens) < 3:
                raise NetlistError(f"malformed .model card: {line!r}")
            model_name = tokens[1]
            model_kind = tokens[2].split("(")[0].lower()
            remainder = line.split(None, 3)[3] if len(tokens) > 3 else ""
            remainder = remainder.replace("(", " ").replace(")", " ")
            _, named = _split_params(remainder.split())
            if model_kind in ("nmos", "pmos"):
                mos_models[model_name.lower()] = _build_model(model_name, model_kind, named)
            elif model_kind == "d":
                diode_models[model_name.lower()] = {
                    key: parse_value(value) for key, value in named.items()
                }
            else:
                raise NetlistError(f"unsupported model type {model_kind!r} in {line!r}")
            continue
        if upper.startswith("."):
            # Other dot-cards (.tran, .op, .ac ...) are ignored: analyses are
            # configured programmatically in this project.
            continue
        kind = upper[0]
        if kind == "R":
            circuit.add(Resistor(card, tokens[1], tokens[2], parse_value(tokens[3])))
        elif kind == "C":
            circuit.add(Capacitor(card, tokens[1], tokens[2], parse_value(tokens[3])))
        elif kind == "L":
            circuit.add(Inductor(card, tokens[1], tokens[2], parse_value(tokens[3])))
        elif kind == "V":
            spec = _normalise_source_spec(tokens[3:])
            circuit.add(VoltageSource(card, tokens[1], tokens[2], _parse_waveform(spec)))
        elif kind == "I":
            spec = _normalise_source_spec(tokens[3:])
            circuit.add(CurrentSource(card, tokens[1], tokens[2], _parse_waveform(spec)))
        elif kind == "E":
            circuit.add(
                VCVS(card, tokens[1], tokens[2], tokens[3], tokens[4], parse_value(tokens[5]))
            )
        elif kind == "G":
            circuit.add(
                VCCS(card, tokens[1], tokens[2], tokens[3], tokens[4], parse_value(tokens[5]))
            )
        elif kind == "D":
            pending_diodes.append(tokens)
        elif kind == "M":
            pending_mosfets.append((tokens, {}))
        else:
            raise NetlistError(f"unsupported element card {card!r}")

    # Diodes and MOSFETs are resolved last so .model cards can appear anywhere.
    for tokens in pending_diodes:
        model_params = diode_models.get(tokens[3].lower(), {}) if len(tokens) > 3 else {}
        circuit.add(
            Diode(
                tokens[0],
                tokens[1],
                tokens[2],
                saturation_current=model_params.get("is", 1e-14),
                emission_coefficient=model_params.get("n", 1.0),
            )
        )
    for tokens, _ in pending_mosfets:
        if len(tokens) < 6:
            raise NetlistError(f"malformed MOSFET card: {' '.join(tokens)!r}")
        positional, named = _split_params(tokens[6:])
        model_key = tokens[5].lower()
        if model_key not in mos_models:
            raise NetlistError(f"unknown MOSFET model {tokens[5]!r}")
        width = parse_value(named.get("w", "1u"))
        length = parse_value(named.get("l", "0.12u"))
        multiplier = int(float(named.get("m", "1")))
        circuit.add(
            MOSFET(
                tokens[0],
                tokens[1],
                tokens[2],
                tokens[3],
                tokens[4],
                mos_models[model_key],
                width,
                length,
                multiplier,
            )
        )
    return circuit
