"""Small-signal AC analysis.

The circuit is linearised around its DC operating point and the complex
MNA system ``(G + jωC) x = b`` is solved at every requested frequency.
Elements describe their small-signal behaviour through ``ac_contribute``,
which receives an :class:`ACStampContext` exposing admittance, controlled
source and independent-source stamps plus the operating-point voltages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.spice.dc import DCOperatingPoint, DCResult
from repro.spice.exceptions import AnalysisError, SingularMatrixError
from repro.spice.mna import NewtonOptions
from repro.spice.netlist import Circuit, GROUND

__all__ = ["ACStampContext", "ACResult", "ACAnalysis"]


class ACStampContext:
    """Accumulator for the complex small-signal MNA system."""

    def __init__(self, circuit: Circuit, operating_point: DCResult, omega: float) -> None:
        self.circuit = circuit
        self.operating_point = operating_point
        self.omega = float(omega)
        self._node_index = circuit.node_index()
        self._branch_index = circuit.branch_index()
        n = circuit.n_unknowns
        self.matrix = np.zeros((n, n), dtype=complex)
        self.rhs = np.zeros(n, dtype=complex)

    # -- lookups -------------------------------------------------------------------

    def node(self, name: str) -> int:
        """Unknown index of a node (-1 for ground)."""
        if name == GROUND:
            return -1
        return self._node_index[name]

    def branch(self, element_name: str) -> int:
        """Unknown index of an element's branch current."""
        return self._branch_index[element_name]

    def op_voltage(self, name: str) -> float:
        """DC operating-point voltage of a node."""
        return self.operating_point.voltage(name)

    # -- stamps ---------------------------------------------------------------------

    def _add(self, row: int, col: int, value: complex) -> None:
        if row >= 0 and col >= 0:
            self.matrix[row, col] += value

    def stamp_admittance(self, node_a: str, node_b: str, admittance: complex) -> None:
        """Two-terminal admittance between two nodes."""
        a, b = self.node(node_a), self.node(node_b)
        self._add(a, a, admittance)
        self._add(b, b, admittance)
        self._add(a, b, -admittance)
        self._add(b, a, -admittance)

    def stamp_vccs(
        self, out_pos: str, out_neg: str, ctrl_pos: str, ctrl_neg: str, gm: complex
    ) -> None:
        """Voltage-controlled current source stamp."""
        op, on = self.node(out_pos), self.node(out_neg)
        cp, cn = self.node(ctrl_pos), self.node(ctrl_neg)
        self._add(op, cp, gm)
        self._add(op, cn, -gm)
        self._add(on, cp, -gm)
        self._add(on, cn, gm)

    def stamp_current_injection(self, node_pos: str, node_neg: str, magnitude: complex) -> None:
        """Independent AC current source from ``node_pos`` to ``node_neg``."""
        a, b = self.node(node_pos), self.node(node_neg)
        if a >= 0:
            self.rhs[a] -= magnitude
        if b >= 0:
            self.rhs[b] += magnitude

    def stamp_branch_voltage(
        self, element_name: str, node_pos: str, node_neg: str, magnitude: complex
    ) -> None:
        """Independent AC voltage source occupying an MNA branch."""
        a, b = self.node(node_pos), self.node(node_neg)
        k = self.branch(element_name)
        self._add(a, k, 1.0)
        self._add(b, k, -1.0)
        self._add(k, a, 1.0)
        self._add(k, b, -1.0)
        self.rhs[k] += magnitude

    def stamp_branch_impedance(
        self, element_name: str, node_pos: str, node_neg: str, impedance: complex
    ) -> None:
        """Branch element with series impedance (inductor in AC)."""
        a, b = self.node(node_pos), self.node(node_neg)
        k = self.branch(element_name)
        self._add(a, k, 1.0)
        self._add(b, k, -1.0)
        self._add(k, a, 1.0)
        self._add(k, b, -1.0)
        self._add(k, k, -impedance)


@dataclass
class ACResult:
    """Complex node voltages over frequency."""

    circuit: Circuit
    frequencies: np.ndarray
    solution: np.ndarray  # shape (n_frequencies, n_unknowns), complex

    def voltage(self, node: str) -> np.ndarray:
        """Complex voltage of a node across all analysed frequencies."""
        if node == GROUND:
            return np.zeros_like(self.frequencies, dtype=complex)
        index = self.circuit.node_index()[node]
        return self.solution[:, index]

    def magnitude_db(self, node: str) -> np.ndarray:
        """Voltage magnitude in dB."""
        magnitude = np.abs(self.voltage(node))
        return 20.0 * np.log10(np.maximum(magnitude, 1e-30))

    def phase_deg(self, node: str) -> np.ndarray:
        """Voltage phase in degrees."""
        return np.degrees(np.angle(self.voltage(node)))

    def bandwidth_3db(self, node: str) -> float:
        """-3 dB bandwidth relative to the lowest-frequency response."""
        magnitude = np.abs(self.voltage(node))
        if magnitude.size == 0 or magnitude[0] <= 0.0:
            raise AnalysisError("cannot compute bandwidth of a zero response")
        reference = magnitude[0] / np.sqrt(2.0)
        below = np.flatnonzero(magnitude < reference)
        if below.size == 0:
            return float(self.frequencies[-1])
        first = int(below[0])
        if first == 0:
            return float(self.frequencies[0])
        # Log-linear interpolation between the bracketing points.
        f0, f1 = self.frequencies[first - 1], self.frequencies[first]
        m0, m1 = magnitude[first - 1], magnitude[first]
        frac = (m0 - reference) / max(m0 - m1, 1e-30)
        return float(f0 + frac * (f1 - f0))


class ACAnalysis:
    """Frequency sweep of the linearised circuit."""

    def __init__(
        self,
        circuit: Circuit,
        frequencies: Sequence[float],
        operating_point: DCResult | None = None,
        newton_options: NewtonOptions | None = None,
    ) -> None:
        freq = np.asarray(frequencies, dtype=float)
        if freq.ndim != 1 or freq.size == 0 or np.any(freq <= 0.0):
            raise AnalysisError("frequencies must be a non-empty array of positive values")
        self.circuit = circuit
        self.frequencies = freq
        self._op = operating_point
        self._newton_options = newton_options

    def run(self) -> ACResult:
        """Linearise at the DC operating point and sweep the frequencies.

        Every ``ac_contribute`` stamp is either a real constant or a pure
        ``jω × real`` term, so stamping once at ``ω = 1`` separates the
        system into ``G = Re(M)`` and ``C = Im(M)``; each frequency then
        only needs a solve of ``(G + jωC) x = b`` instead of a re-stamp.
        """
        op = self._op or DCOperatingPoint(self.circuit, self._newton_options).run()
        n = self.circuit.n_unknowns
        ctx = ACStampContext(self.circuit, op, 1.0)
        for element in self.circuit:
            element.ac_contribute(ctx)
        conductance = ctx.matrix.real.copy()
        capacitance = ctx.matrix.imag.copy()
        # Tiny shunt keeps nodes with only capacitive paths well-posed.
        conductance[np.diag_indices(self.circuit.n_nodes)] += 1e-12
        solution = np.zeros((self.frequencies.size, n), dtype=complex)
        for i, frequency in enumerate(self.frequencies):
            matrix = conductance + (2.0j * np.pi * frequency) * capacitance
            try:
                solution[i] = np.linalg.solve(matrix, ctx.rhs)
            except np.linalg.LinAlgError as exc:
                raise SingularMatrixError(
                    f"singular AC matrix at {frequency:.3e} Hz: {exc}"
                ) from exc
        return ACResult(self.circuit, self.frequencies, solution)
