"""Transient analysis.

A fixed-step (optionally refined) time-marching loop: at every time point
the nonlinear system with capacitor/inductor companion models is solved by
the shared Newton solver, starting from the previous solution.  Backward
Euler is used by default because of its robustness on switching circuits;
trapezoidal integration is available for higher accuracy on smooth
waveforms.

The result object exposes every node voltage as a
:class:`~repro.spice.waveform.Waveform`, plus supply-current waveforms
computed from the voltage-source branch currents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.spice.dc import DCOperatingPoint, DCResult
from repro.spice.elements import VoltageSource
from repro.spice.exceptions import AnalysisError, ConvergenceError
from repro.spice.mna import NewtonOptions, NewtonSolver
from repro.spice.netlist import Circuit, GROUND
from repro.spice.waveform import Waveform

__all__ = ["TransientResult", "TransientAnalysis"]


@dataclass
class TransientResult:
    """Sampled node voltages and branch currents over time."""

    circuit: Circuit
    time: np.ndarray
    solution: np.ndarray  # shape (n_timepoints, n_unknowns)

    def voltage(self, node: str) -> Waveform:
        """Waveform of one node voltage."""
        if node == GROUND:
            return Waveform(self.time, np.zeros_like(self.time), node)
        index = self.circuit.node_index()[node]
        return Waveform(self.time, self.solution[:, index], node)

    def branch_current(self, element_name: str) -> Waveform:
        """Waveform of an element's branch current."""
        index = self.circuit.branch_index()[element_name]
        return Waveform(self.time, self.solution[:, index], f"i({element_name})")

    def source_current(self, source_name: str) -> Waveform:
        """Current delivered by a voltage source over time."""
        branch = self.branch_current(source_name)
        return Waveform(branch.time, -branch.values, f"i({source_name})")

    def supply_current(self) -> Waveform:
        """Sum of the absolute currents of all voltage sources."""
        sources = self.circuit.elements_of_type(VoltageSource)
        if not sources:
            raise AnalysisError("circuit has no voltage sources to meter")
        total = np.zeros_like(self.time)
        for source in sources:
            total += np.abs(self.branch_current(source.name).values)
        return Waveform(self.time, total, "i(supply)")

    @property
    def nodes(self) -> Dict[str, Waveform]:
        """All node-voltage waveforms keyed by node name."""
        return {node: self.voltage(node) for node in self.circuit.nodes}


class TransientAnalysis:
    """Time-domain simulation of a circuit.

    Parameters
    ----------
    circuit:
        The circuit to simulate.
    t_stop:
        Final simulation time (seconds).
    dt:
        Base time step.  When a time point fails to converge the step is
        halved (up to ``max_step_refinements`` times) before giving up.
    integrator:
        ``"be"`` (backward Euler, default) or ``"trap"`` (trapezoidal).
    t_start_recording:
        Samples before this time are discarded from the stored result
        (useful for skipping start-up transients while keeping memory low).
    initial_conditions:
        Optional mapping of node name to initial voltage.  Nodes not listed
        start from the DC operating point (or zero if ``use_dc_start`` is
        False).
    use_dc_start:
        Whether to compute a DC operating point as the starting state.
    """

    def __init__(
        self,
        circuit: Circuit,
        t_stop: float,
        dt: float,
        integrator: str = "be",
        t_start_recording: float = 0.0,
        initial_conditions: Optional[Dict[str, float]] = None,
        use_dc_start: bool = True,
        newton_options: NewtonOptions | None = None,
        max_step_refinements: int = 6,
    ) -> None:
        if t_stop <= 0.0 or dt <= 0.0:
            raise AnalysisError("t_stop and dt must be positive")
        if dt >= t_stop:
            raise AnalysisError("dt must be smaller than t_stop")
        if integrator not in ("be", "trap"):
            raise AnalysisError("integrator must be 'be' or 'trap'")
        self.circuit = circuit
        self.t_stop = float(t_stop)
        self.dt = float(dt)
        self.integrator = integrator
        self.t_start_recording = float(t_start_recording)
        self.initial_conditions = dict(initial_conditions or {})
        self.use_dc_start = use_dc_start
        self.newton_options = newton_options or NewtonOptions(
            max_iterations=60, voltage_step_limit=1.0
        )
        self.max_step_refinements = max_step_refinements

    # -- start-up ---------------------------------------------------------------------

    def _initial_state(self, solver: NewtonSolver) -> np.ndarray:
        n = self.circuit.n_unknowns
        x = np.zeros(n)
        if self.use_dc_start:
            try:
                dc: DCResult = DCOperatingPoint(self.circuit, self.newton_options).run()
                x = dc.x.copy()
            except ConvergenceError:
                x = np.zeros(n)
        node_index = self.circuit.node_index()
        for node, value in self.initial_conditions.items():
            if node == GROUND:
                continue
            if node not in node_index:
                raise AnalysisError(f"initial condition on unknown node {node!r}")
            x[node_index[node]] = float(value)
        return x

    # -- main loop ----------------------------------------------------------------------

    def run(self) -> TransientResult:
        """Run the transient simulation and return the sampled solution."""
        solver = NewtonSolver(self.circuit, self.newton_options)
        state: Dict[str, Dict[str, float]] = {}
        x = self._initial_state(solver)
        times = []
        solutions = []
        if self.t_start_recording <= 0.0:
            times.append(0.0)
            solutions.append(x.copy())
        t = 0.0
        dt = self.dt
        while t < self.t_stop - 1e-21:
            step = min(dt, self.t_stop - t)
            accepted = False
            refinements = 0
            while not accepted:
                try:
                    result = solver.solve(
                        x,
                        analysis="tran",
                        time=t + step,
                        dt=step,
                        x_prev=x,
                        integrator=self.integrator,
                        state=state,
                    )
                    accepted = True
                except ConvergenceError:
                    refinements += 1
                    if refinements > self.max_step_refinements:
                        raise
                    step *= 0.5
            t += step
            x = result.x
            # Commit integrator state (trapezoidal capacitor currents).
            for element in self.circuit:
                accept = getattr(element, "accept_timestep", None)
                if accept is not None and element.name in state:
                    accept(state[element.name])
            if t >= self.t_start_recording:
                times.append(t)
                solutions.append(x.copy())
        if not times:
            raise AnalysisError("no time points were recorded; check t_start_recording")
        return TransientResult(self.circuit, np.asarray(times), np.vstack(solutions))
