"""Transient analysis.

A fixed-step (optionally refined) time-marching loop: at every time point
the nonlinear system with capacitor/inductor companion models is solved by
the shared Newton solver, starting from the previous solution.  Backward
Euler is used by default because of its robustness on switching circuits;
trapezoidal integration is available for higher accuracy on smooth
waveforms.

The result object exposes every node voltage as a
:class:`~repro.spice.waveform.Waveform`, plus supply-current waveforms
computed from the voltage-source branch currents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.spice.dc import DCOperatingPoint, DCResult
from repro.spice.elements import VoltageSource
from repro.spice.exceptions import AnalysisError, ConvergenceError
from repro.spice.mna import NewtonOptions, NewtonSolver
from repro.spice.netlist import Circuit, GROUND
from repro.spice.plan import LaneSystem, compile_circuits, lane_dc_solve, lane_newton
from repro.spice.waveform import Waveform

__all__ = ["TransientResult", "TransientAnalysis", "LaneTransientAnalysis"]


@dataclass
class TransientResult:
    """Sampled node voltages and branch currents over time."""

    circuit: Circuit
    time: np.ndarray
    solution: np.ndarray  # shape (n_timepoints, n_unknowns)

    def voltage(self, node: str) -> Waveform:
        """Waveform of one node voltage."""
        if node == GROUND:
            return Waveform(self.time, np.zeros_like(self.time), node)
        index = self.circuit.node_index()[node]
        return Waveform(self.time, self.solution[:, index], node)

    def branch_current(self, element_name: str) -> Waveform:
        """Waveform of an element's branch current."""
        index = self.circuit.branch_index()[element_name]
        return Waveform(self.time, self.solution[:, index], f"i({element_name})")

    def source_current(self, source_name: str) -> Waveform:
        """Current delivered by a voltage source over time."""
        branch = self.branch_current(source_name)
        return Waveform(branch.time, -branch.values, f"i({source_name})")

    def supply_current(self) -> Waveform:
        """Sum of the absolute currents of all voltage sources."""
        sources = self.circuit.elements_of_type(VoltageSource)
        if not sources:
            raise AnalysisError("circuit has no voltage sources to meter")
        branch_index = self.circuit.branch_index()
        columns = [branch_index[source.name] for source in sources]
        total = np.abs(self.solution[:, columns]).sum(axis=1)
        return Waveform(self.time, total, "i(supply)")

    @property
    def nodes(self) -> Dict[str, Waveform]:
        """All node-voltage waveforms keyed by node name."""
        return {node: self.voltage(node) for node in self.circuit.nodes}


class TransientAnalysis:
    """Time-domain simulation of a circuit.

    Parameters
    ----------
    circuit:
        The circuit to simulate.
    t_stop:
        Final simulation time (seconds).
    dt:
        Base time step.  When a time point fails to converge the step is
        halved (up to ``max_step_refinements`` times) before giving up.
    integrator:
        ``"be"`` (backward Euler, default) or ``"trap"`` (trapezoidal).
    t_start_recording:
        Samples before this time are discarded from the stored result
        (useful for skipping start-up transients while keeping memory low).
    initial_conditions:
        Optional mapping of node name to initial voltage.  Nodes not listed
        start from the DC operating point (or zero if ``use_dc_start`` is
        False).
    use_dc_start:
        Whether to compute a DC operating point as the starting state.
    engine:
        ``"reference"`` for the per-element Python engine (byte-stable) or
        ``"compiled"`` for the vectorised stamp plan of
        :mod:`repro.spice.plan` (tolerance-equivalent results).
    """

    def __init__(
        self,
        circuit: Circuit,
        t_stop: float,
        dt: float,
        integrator: str = "be",
        t_start_recording: float = 0.0,
        initial_conditions: Optional[Dict[str, float]] = None,
        use_dc_start: bool = True,
        newton_options: NewtonOptions | None = None,
        max_step_refinements: int = 6,
        engine: str = "reference",
    ) -> None:
        if t_stop <= 0.0 or dt <= 0.0:
            raise AnalysisError("t_stop and dt must be positive")
        if dt >= t_stop:
            raise AnalysisError("dt must be smaller than t_stop")
        if integrator not in ("be", "trap"):
            raise AnalysisError("integrator must be 'be' or 'trap'")
        if engine not in ("reference", "compiled"):
            raise AnalysisError(f"unknown transient engine {engine!r}")
        self.circuit = circuit
        self.engine = engine
        self.t_stop = float(t_stop)
        self.dt = float(dt)
        self.integrator = integrator
        self.t_start_recording = float(t_start_recording)
        self.initial_conditions = dict(initial_conditions or {})
        self.use_dc_start = use_dc_start
        self.newton_options = newton_options or NewtonOptions(
            max_iterations=60, voltage_step_limit=1.0
        )
        self.max_step_refinements = max_step_refinements

    # -- start-up ---------------------------------------------------------------------

    def _initial_state(self, solver: NewtonSolver) -> np.ndarray:
        n = self.circuit.n_unknowns
        x = np.zeros(n)
        if self.use_dc_start:
            try:
                dc: DCResult = DCOperatingPoint(self.circuit, self.newton_options).run()
                x = dc.x.copy()
            except ConvergenceError:
                x = np.zeros(n)
        node_index = self.circuit.node_index()
        for node, value in self.initial_conditions.items():
            if node == GROUND:
                continue
            if node not in node_index:
                raise AnalysisError(f"initial condition on unknown node {node!r}")
            x[node_index[node]] = float(value)
        return x

    # -- main loop ----------------------------------------------------------------------

    def run(self) -> TransientResult:
        """Run the transient simulation and return the sampled solution."""
        if self.engine == "compiled":
            lanes = LaneTransientAnalysis(
                [self.circuit],
                self.t_stop,
                self.dt,
                integrator=self.integrator,
                t_start_recording=self.t_start_recording,
                initial_conditions=[self.initial_conditions],
                use_dc_start=self.use_dc_start,
                newton_options=self.newton_options,
                max_step_refinements=self.max_step_refinements,
            )
            result = lanes.run()[0]
            if result is None:
                raise ConvergenceError(
                    "transient time point failed to converge after "
                    f"{self.max_step_refinements} step refinements"
                )
            return result
        solver = NewtonSolver(self.circuit, self.newton_options)
        state: Dict[str, Dict[str, float]] = {}
        x = self._initial_state(solver)
        times = []
        solutions = []
        if self.t_start_recording <= 0.0:
            times.append(0.0)
            solutions.append(x.copy())
        t = 0.0
        dt = self.dt
        while t < self.t_stop - 1e-21:
            step = min(dt, self.t_stop - t)
            accepted = False
            refinements = 0
            while not accepted:
                try:
                    result = solver.solve(
                        x,
                        analysis="tran",
                        time=t + step,
                        dt=step,
                        x_prev=x,
                        integrator=self.integrator,
                        state=state,
                    )
                    accepted = True
                except ConvergenceError:
                    refinements += 1
                    if refinements > self.max_step_refinements:
                        raise
                    step *= 0.5
            t += step
            x = result.x
            # Commit integrator state (trapezoidal capacitor currents).
            for element in self.circuit:
                accept = getattr(element, "accept_timestep", None)
                if accept is not None and element.name in state:
                    accept(state[element.name])
            if t >= self.t_start_recording:
                times.append(t)
                solutions.append(x.copy())
        if not times:
            raise AnalysisError("no time points were recorded; check t_start_recording")
        return TransientResult(self.circuit, np.asarray(times), np.vstack(solutions))


class LaneTransientAnalysis:
    """Lane-parallel transient: many same-topology circuits in one loop.

    All lanes are advanced through a single time-marching loop with a
    batched ``(n_lanes, n, n)`` Jacobian and one ``np.linalg.solve`` per
    Newton iteration; per-lane masks handle convergence, step acceptance
    and step refinement independently, so a stiff lane refining its time
    step does not slow the others' Newton iterations down to lock-step.

    Parameters mirror :class:`TransientAnalysis`; ``circuits`` is a
    sequence of circuits sharing one topology (same element types, names
    and nodes — parameter values may differ per lane), and
    ``initial_conditions`` is either one mapping shared by every lane or a
    per-lane sequence of mappings.

    :meth:`run` returns one :class:`TransientResult` per lane, with
    ``None`` for lanes whose time stepping failed to converge (where the
    scalar analysis would raise :class:`ConvergenceError`).
    """

    def __init__(
        self,
        circuits: Sequence[Circuit],
        t_stop: float,
        dt: float,
        integrator: str = "be",
        t_start_recording: float = 0.0,
        initial_conditions: Union[Dict[str, float], Sequence[Dict[str, float]], None] = None,
        use_dc_start: bool = True,
        newton_options: NewtonOptions | None = None,
        max_step_refinements: int = 6,
    ) -> None:
        if not circuits:
            raise AnalysisError("LaneTransientAnalysis needs at least one circuit")
        if t_stop <= 0.0 or dt <= 0.0:
            raise AnalysisError("t_stop and dt must be positive")
        if dt >= t_stop:
            raise AnalysisError("dt must be smaller than t_stop")
        if integrator not in ("be", "trap"):
            raise AnalysisError("integrator must be 'be' or 'trap'")
        self.circuits = list(circuits)
        self.t_stop = float(t_stop)
        self.dt = float(dt)
        self.integrator = integrator
        self.t_start_recording = float(t_start_recording)
        if initial_conditions is None:
            ics: List[Dict[str, float]] = [{} for _ in self.circuits]
        elif isinstance(initial_conditions, dict):
            ics = [dict(initial_conditions) for _ in self.circuits]
        else:
            ics = [dict(lane_ics or {}) for lane_ics in initial_conditions]
            if len(ics) != len(self.circuits):
                raise AnalysisError(
                    f"got {len(ics)} initial-condition mappings for {len(self.circuits)} lanes"
                )
        self.initial_conditions = ics
        self.use_dc_start = use_dc_start
        self.newton_options = newton_options or NewtonOptions(
            max_iterations=60, voltage_step_limit=1.0
        )
        self.max_step_refinements = max_step_refinements

    # -- start-up ---------------------------------------------------------------------

    def _initial_state(self, system: LaneSystem) -> np.ndarray:
        plan = system.plan
        x = np.zeros((plan.n_lanes, plan.pad_size))
        if self.use_dc_start:
            dc_x, dc_converged, _ = lane_dc_solve(system, self.newton_options)
            x[dc_converged] = dc_x[dc_converged]
        node_index = plan.circuits[0].node_index()
        for lane, conditions in enumerate(self.initial_conditions):
            for node, value in conditions.items():
                if node == GROUND:
                    continue
                if node not in node_index:
                    raise AnalysisError(f"initial condition on unknown node {node!r}")
                x[lane, node_index[node]] = float(value)
        return x

    # -- main loop ----------------------------------------------------------------------

    def run(self) -> List[Optional[TransientResult]]:
        """Advance every lane to ``t_stop`` and return per-lane results."""
        plan = compile_circuits(self.circuits)
        system = LaneSystem(plan)
        options = self.newton_options
        n_lanes, n = plan.n_lanes, plan.n_unknowns
        x = self._initial_state(system)
        times: List[List[float]] = [[] for _ in range(n_lanes)]
        solutions: List[List[np.ndarray]] = [[] for _ in range(n_lanes)]
        if self.t_start_recording <= 0.0:
            for lane in range(n_lanes):
                times[lane].append(0.0)
                solutions[lane].append(x[lane, :n].copy())
        t = np.zeros(n_lanes)
        pending_step = np.full(n_lanes, self.dt)
        refinements = np.zeros(n_lanes, dtype=int)
        alive = np.ones(n_lanes, dtype=bool)
        cap_i_prev = np.zeros((n_lanes, plan.n_caps))
        marching = alive & (t < self.t_stop - 1e-21)
        while marching.any():
            attempt = np.minimum(pending_step, self.t_stop - t)
            # Lanes that are done/dead still flow through the assembly; give
            # them a harmless step so geq = C/dt stays finite.
            step = np.where(marching, attempt, self.dt)
            system.begin_tran(
                time=t + step,
                dt=step,
                x_prev=x,
                integrator=self.integrator,
                cap_i_prev=cap_i_prev if self.integrator == "trap" else None,
                gmin=options.gmin,
                source_scale=options.source_scale,
            )
            x_trial = x.copy()
            converged, _ = lane_newton(system, x_trial, marching, options)
            accepted = marching & converged
            rejected = marching & ~converged
            if rejected.any():
                refinements[rejected] += 1
                dead = rejected & (refinements > self.max_step_refinements)
                alive &= ~dead
                retry = rejected & ~dead
                pending_step[retry] = attempt[retry] * 0.5
            if accepted.any():
                if self.integrator == "trap" and plan.n_caps:
                    committed = system.cap_currents(x_trial, x, step, cap_i_prev)
                    cap_i_prev[accepted] = committed[accepted]
                t[accepted] += step[accepted]
                x[accepted] = x_trial[accepted]
                pending_step[accepted] = self.dt
                refinements[accepted] = 0
                for lane in np.flatnonzero(accepted):
                    if t[lane] >= self.t_start_recording:
                        times[lane].append(float(t[lane]))
                        solutions[lane].append(x[lane, :n].copy())
            marching = alive & (t < self.t_stop - 1e-21)
        results: List[Optional[TransientResult]] = []
        for lane in range(n_lanes):
            if not alive[lane]:
                results.append(None)
                continue
            if not times[lane]:
                raise AnalysisError("no time points were recorded; check t_start_recording")
            results.append(
                TransientResult(
                    plan.circuits[lane], np.asarray(times[lane]), np.vstack(solutions[lane])
                )
            )
        return results
