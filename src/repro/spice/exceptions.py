"""Exception hierarchy of the circuit simulator."""

from __future__ import annotations

__all__ = [
    "SpiceError",
    "NetlistError",
    "AnalysisError",
    "ConvergenceError",
    "SingularMatrixError",
]


class SpiceError(Exception):
    """Base class for all simulator errors."""


class NetlistError(SpiceError):
    """The circuit description is malformed (bad nodes, duplicate names...)."""


class AnalysisError(SpiceError):
    """An analysis was configured incorrectly or failed to run."""


class ConvergenceError(AnalysisError):
    """Newton-Raphson iteration failed to converge."""

    def __init__(self, message: str, iterations: int = 0, residual: float = float("nan")) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class SingularMatrixError(AnalysisError):
    """The MNA matrix is singular (floating node, voltage-source loop...)."""
