"""Modified nodal analysis (MNA) assembly and Newton-Raphson solution.

The analyses (DC, transient, AC) all funnel through the machinery here:

* :class:`StampContext` is handed to every element's ``contribute`` method
  and accumulates the residual vector and Jacobian matrix of the nonlinear
  nodal equations ``f(x) = 0`` where ``x`` stacks node voltages and branch
  currents.
* :class:`NewtonSolver` performs damped Newton-Raphson iteration with
  voltage-step limiting and an optional ``gmin`` conductance to ground on
  every node (used by the homotopies in :mod:`repro.spice.dc`).

Residual convention: for each node, the residual is the sum of currents
flowing *out* of the node into the connected elements; for each branch, it
is the element's branch (voltage) equation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.spice.exceptions import ConvergenceError, SingularMatrixError
from repro.spice.netlist import Circuit, GROUND

__all__ = ["StampContext", "NewtonSolver", "NewtonOptions"]


class StampContext:
    """Accumulator for residual and Jacobian contributions.

    Parameters
    ----------
    circuit:
        The circuit being analysed (used for the node / branch index maps).
    x:
        Current estimate of the unknown vector (node voltages followed by
        branch currents).
    analysis:
        ``"dc"``, ``"tran"`` or ``"ac"``.
    time / dt:
        Present simulation time and time step (transient only).
    x_prev:
        Unknown vector at the previous accepted time point (transient only).
    integrator:
        ``"be"`` (backward Euler) or ``"trap"`` (trapezoidal), transient only.
    state:
        Mutable per-element state dictionary that persists across time
        points (used e.g. for trapezoidal capacitor currents).
    """

    def __init__(
        self,
        circuit: Circuit,
        x: np.ndarray,
        analysis: str = "dc",
        time: float = 0.0,
        dt: float = 0.0,
        x_prev: Optional[np.ndarray] = None,
        integrator: str = "be",
        state: Optional[Dict[str, Dict[str, float]]] = None,
        gmin: float = 0.0,
        source_scale: float = 1.0,
    ) -> None:
        self.circuit = circuit
        self.analysis = analysis
        self.time = time
        self.dt = dt
        self.integrator = integrator
        self.state = state if state is not None else {}
        self.gmin = gmin
        self.source_scale = source_scale
        self._node_index = circuit.node_index()
        self._branch_index = circuit.branch_index()
        self.x = x
        self.x_prev = x_prev
        n = circuit.n_unknowns
        self.residual = np.zeros(n)
        self.jacobian = np.zeros((n, n))

    # -- index helpers ---------------------------------------------------------

    def node(self, name: str) -> int:
        """Unknown index of a node (-1 for ground)."""
        if name == GROUND:
            return -1
        return self._node_index[name]

    def branch(self, element_name: str, offset: int = 0) -> int:
        """Unknown index of an element's branch current."""
        return self._branch_index[element_name] + offset

    # -- value accessors ---------------------------------------------------------

    def v(self, name: str) -> float:
        """Present voltage estimate of a node (0.0 for ground)."""
        index = self.node(name)
        return 0.0 if index < 0 else float(self.x[index])

    def v_prev(self, name: str) -> float:
        """Node voltage at the previous accepted time point."""
        if self.x_prev is None:
            return self.v(name)
        index = self.node(name)
        return 0.0 if index < 0 else float(self.x_prev[index])

    def i_branch(self, element_name: str, offset: int = 0) -> float:
        """Present estimate of an element's branch current."""
        return float(self.x[self.branch(element_name, offset)])

    def i_branch_prev(self, element_name: str, offset: int = 0) -> float:
        """Branch current at the previous accepted time point."""
        if self.x_prev is None:
            return self.i_branch(element_name, offset)
        return float(self.x_prev[self.branch(element_name, offset)])

    def element_state(self, element_name: str) -> Dict[str, float]:
        """Persistent per-element state dictionary (transient integrators)."""
        return self.state.setdefault(element_name, {})

    # -- stamping ------------------------------------------------------------------

    def add_residual(self, index: int, value: float) -> None:
        """Add ``value`` to the residual row ``index`` (ignored for ground)."""
        if index >= 0:
            self.residual[index] += value

    def add_jacobian(self, row: int, col: int, value: float) -> None:
        """Add ``value`` to the Jacobian entry (ignored for ground rows/cols)."""
        if row >= 0 and col >= 0:
            self.jacobian[row, col] += value

    def stamp_current(self, node_pos: int, node_neg: int, current: float) -> None:
        """Current flowing out of ``node_pos`` into the element and back out
        of the element into ``node_neg``."""
        self.add_residual(node_pos, current)
        self.add_residual(node_neg, -current)

    def stamp_conductance(self, node_a: int, node_b: int, g: float) -> None:
        """Jacobian entries of a two-terminal conductance between two nodes."""
        self.add_jacobian(node_a, node_a, g)
        self.add_jacobian(node_b, node_b, g)
        self.add_jacobian(node_a, node_b, -g)
        self.add_jacobian(node_b, node_a, -g)

    def stamp_transconductance(
        self, out_pos: int, out_neg: int, ctrl_pos: int, ctrl_neg: int, gm: float
    ) -> None:
        """Jacobian entries of a current from ``out_pos`` to ``out_neg``
        controlled by the voltage ``v(ctrl_pos) - v(ctrl_neg)``."""
        self.add_jacobian(out_pos, ctrl_pos, gm)
        self.add_jacobian(out_pos, ctrl_neg, -gm)
        self.add_jacobian(out_neg, ctrl_pos, -gm)
        self.add_jacobian(out_neg, ctrl_neg, gm)

    def finalise(self) -> None:
        """Apply the gmin conductance from every node to ground."""
        if self.gmin <= 0.0:
            return
        n_nodes = self.circuit.n_nodes
        self.residual[:n_nodes] += self.gmin * self.x[:n_nodes]
        diag = np.arange(n_nodes)
        self.jacobian[diag, diag] += self.gmin


@dataclass
class NewtonOptions:
    """Tuning knobs of the Newton-Raphson solver."""

    max_iterations: int = 100
    abs_tolerance: float = 1e-9
    rel_tolerance: float = 1e-6
    voltage_step_limit: float = 0.6
    damping: float = 1.0
    gmin: float = 1e-12
    source_scale: float = 1.0


@dataclass
class NewtonResult:
    """Outcome of one Newton solve."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    context: StampContext = field(repr=False, default=None)


class NewtonSolver:
    """Damped Newton-Raphson solver for the assembled MNA system."""

    def __init__(self, circuit: Circuit, options: NewtonOptions | None = None) -> None:
        circuit.validate()
        self.circuit = circuit
        self.options = options or NewtonOptions()

    def assemble(self, x: np.ndarray, **context_kwargs) -> StampContext:
        """Build residual and Jacobian at the estimate ``x``."""
        ctx = StampContext(
            self.circuit,
            x,
            gmin=context_kwargs.pop("gmin", self.options.gmin),
            source_scale=context_kwargs.pop("source_scale", self.options.source_scale),
            **context_kwargs,
        )
        for element in self.circuit:
            element.contribute(ctx)
        ctx.finalise()
        return ctx

    def solve(self, x0: Optional[np.ndarray] = None, **context_kwargs) -> NewtonResult:
        """Iterate Newton-Raphson from ``x0`` until convergence.

        Raises :class:`ConvergenceError` if the iteration does not converge
        within the configured maximum number of iterations and
        :class:`SingularMatrixError` when the Jacobian cannot be factored.
        """
        n = self.circuit.n_unknowns
        x = np.zeros(n) if x0 is None else np.array(x0, dtype=float)
        if x.size != n:
            raise ValueError(f"initial guess has size {x.size}, expected {n}")
        opts = self.options
        last_residual = float("inf")
        ctx = None
        for iteration in range(1, opts.max_iterations + 1):
            ctx = self.assemble(x, **context_kwargs)
            residual_norm = float(np.max(np.abs(ctx.residual))) if n else 0.0
            if not np.isfinite(residual_norm):
                raise ConvergenceError(
                    "residual became non-finite during Newton iteration",
                    iterations=iteration,
                    residual=residual_norm,
                )
            try:
                delta = np.linalg.solve(ctx.jacobian, -ctx.residual)
            except np.linalg.LinAlgError as exc:
                raise SingularMatrixError(
                    f"singular MNA Jacobian at iteration {iteration}: {exc}"
                ) from exc
            # Limit the voltage update to aid convergence on stiff circuits.
            n_nodes = self.circuit.n_nodes
            voltage_delta = delta[:n_nodes]
            max_step = float(np.max(np.abs(voltage_delta))) if n_nodes else 0.0
            scale = 1.0
            if max_step > opts.voltage_step_limit > 0.0:
                scale = opts.voltage_step_limit / max_step
            x = x + opts.damping * scale * delta
            delta_norm = float(np.max(np.abs(delta))) if n else 0.0
            converged = (
                residual_norm < opts.abs_tolerance
                or delta_norm < opts.abs_tolerance
                or (
                    residual_norm < opts.rel_tolerance * max(last_residual, 1e-30)
                    and delta_norm < opts.rel_tolerance * max(float(np.max(np.abs(x))), 1.0)
                )
            )
            if converged:
                return NewtonResult(
                    x=x,
                    iterations=iteration,
                    residual_norm=residual_norm,
                    converged=True,
                    context=ctx,
                )
            last_residual = residual_norm
        raise ConvergenceError(
            f"Newton iteration did not converge within {opts.max_iterations} iterations "
            f"(residual {last_residual:.3e})",
            iterations=opts.max_iterations,
            residual=last_residual,
        )
