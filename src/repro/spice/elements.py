"""Linear elements, sources and the junction diode.

Every element implements the ``contribute`` protocol described in
:mod:`repro.spice.netlist`.  Independent sources accept either a constant
value or a :class:`SourceWaveform` (DC, pulse, sine, piece-wise linear) so
the same element types serve DC, transient and AC test benches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.spice.exceptions import NetlistError
from repro.spice.netlist import Element

__all__ = [
    "SourceWaveform",
    "DCWaveform",
    "PulseWaveform",
    "SineWaveform",
    "PWLWaveform",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "VCVS",
    "VCCS",
    "Diode",
]


# ---------------------------------------------------------------------------
# Source waveforms
# ---------------------------------------------------------------------------


class SourceWaveform:
    """Time-dependent value of an independent source."""

    def value(self, time: float) -> float:
        """Source value at ``time`` (seconds)."""
        raise NotImplementedError

    @property
    def dc(self) -> float:
        """Value used for DC operating-point analysis."""
        return self.value(0.0)


@dataclass
class DCWaveform(SourceWaveform):
    """A constant source value."""

    level: float = 0.0

    def value(self, time: float) -> float:
        return float(self.level)


@dataclass
class PulseWaveform(SourceWaveform):
    """SPICE ``PULSE(v1 v2 td tr tf pw per)`` waveform."""

    v1: float
    v2: float
    delay: float = 0.0
    rise: float = 1e-12
    fall: float = 1e-12
    width: float = 1e-9
    period: float = 2e-9

    def value(self, time: float) -> float:
        if time < self.delay:
            return float(self.v1)
        t = (time - self.delay) % self.period
        rise = max(self.rise, 1e-15)
        fall = max(self.fall, 1e-15)
        if t < rise:
            return float(self.v1 + (self.v2 - self.v1) * t / rise)
        if t < rise + self.width:
            return float(self.v2)
        if t < rise + self.width + fall:
            return float(self.v2 + (self.v1 - self.v2) * (t - rise - self.width) / fall)
        return float(self.v1)

    @property
    def dc(self) -> float:
        return float(self.v1)


@dataclass
class SineWaveform(SourceWaveform):
    """SPICE ``SIN(vo va freq td theta)`` waveform."""

    offset: float
    amplitude: float
    frequency: float
    delay: float = 0.0
    damping: float = 0.0

    def value(self, time: float) -> float:
        if time < self.delay:
            return float(self.offset)
        t = time - self.delay
        envelope = math.exp(-self.damping * t)
        return float(
            self.offset + self.amplitude * envelope * math.sin(2.0 * math.pi * self.frequency * t)
        )

    @property
    def dc(self) -> float:
        return float(self.offset)


class PWLWaveform(SourceWaveform):
    """Piece-wise linear waveform defined by ``(time, value)`` pairs."""

    def __init__(self, points: Sequence[Tuple[float, float]]) -> None:
        if not points:
            raise NetlistError("a PWL waveform needs at least one point")
        ordered = sorted((float(t), float(v)) for t, v in points)
        times = [t for t, _ in ordered]
        if len(set(times)) != len(times):
            raise NetlistError("PWL time points must be distinct")
        self.points = ordered

    def value(self, time: float) -> float:
        points = self.points
        if time <= points[0][0]:
            return points[0][1]
        if time >= points[-1][0]:
            return points[-1][1]
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            if t0 <= time <= t1:
                if t1 == t0:
                    return v1
                frac = (time - t0) / (t1 - t0)
                return v0 + frac * (v1 - v0)
        return points[-1][1]

    @property
    def dc(self) -> float:
        return self.points[0][1]


def _as_waveform(value) -> SourceWaveform:
    if isinstance(value, SourceWaveform):
        return value
    return DCWaveform(float(value))


# ---------------------------------------------------------------------------
# Two-terminal passives
# ---------------------------------------------------------------------------


class Resistor(Element):
    """Linear resistor between two nodes."""

    def __init__(self, name: str, node_pos: str, node_neg: str, resistance: float) -> None:
        super().__init__(name, (node_pos, node_neg))
        if resistance <= 0.0:
            raise NetlistError(f"resistor {name!r} must have a positive resistance")
        self.resistance = float(resistance)

    @property
    def conductance(self) -> float:
        """Conductance ``1/R``."""
        return 1.0 / self.resistance

    def contribute(self, ctx) -> None:
        a = ctx.node(self.nodes[0])
        b = ctx.node(self.nodes[1])
        g = self.conductance
        current = g * (ctx.v(self.nodes[0]) - ctx.v(self.nodes[1]))
        ctx.stamp_current(a, b, current)
        ctx.stamp_conductance(a, b, g)

    def ac_contribute(self, ctx) -> None:
        ctx.stamp_admittance(self.nodes[0], self.nodes[1], self.conductance)


class Capacitor(Element):
    """Linear capacitor between two nodes.

    Open circuit in DC; in transient analysis it is replaced by its
    backward-Euler or trapezoidal companion model.
    """

    def __init__(
        self, name: str, node_pos: str, node_neg: str, capacitance: float, ic: float | None = None
    ) -> None:
        super().__init__(name, (node_pos, node_neg))
        if capacitance < 0.0:
            raise NetlistError(f"capacitor {name!r} must have a non-negative capacitance")
        self.capacitance = float(capacitance)
        self.initial_voltage = ic

    def contribute(self, ctx) -> None:
        if ctx.analysis != "tran" or ctx.dt <= 0.0 or self.capacitance == 0.0:
            return
        a = ctx.node(self.nodes[0])
        b = ctx.node(self.nodes[1])
        v_now = ctx.v(self.nodes[0]) - ctx.v(self.nodes[1])
        v_prev = ctx.v_prev(self.nodes[0]) - ctx.v_prev(self.nodes[1])
        c = self.capacitance
        state = ctx.element_state(self.name)
        if ctx.integrator == "trap":
            i_prev = state.get("current", 0.0)
            geq = 2.0 * c / ctx.dt
            current = geq * (v_now - v_prev) - i_prev
        else:  # backward Euler
            geq = c / ctx.dt
            current = geq * (v_now - v_prev)
        state["pending_current"] = current
        ctx.stamp_current(a, b, current)
        ctx.stamp_conductance(a, b, geq)

    def accept_timestep(self, state: dict) -> None:
        """Commit the integrator state after a time step is accepted."""
        if "pending_current" in state:
            state["current"] = state.pop("pending_current")

    def ac_contribute(self, ctx) -> None:
        ctx.stamp_admittance(self.nodes[0], self.nodes[1], 1j * ctx.omega * self.capacitance)


class Inductor(Element):
    """Linear inductor; short circuit in DC, companion model in transient."""

    n_branches = 1

    def __init__(
        self, name: str, node_pos: str, node_neg: str, inductance: float, ic: float | None = None
    ) -> None:
        super().__init__(name, (node_pos, node_neg))
        if inductance <= 0.0:
            raise NetlistError(f"inductor {name!r} must have a positive inductance")
        self.inductance = float(inductance)
        self.initial_current = ic

    def contribute(self, ctx) -> None:
        a = ctx.node(self.nodes[0])
        b = ctx.node(self.nodes[1])
        k = ctx.branch(self.name)
        current = ctx.i_branch(self.name)
        # KCL: branch current leaves node a, enters node b.
        ctx.add_residual(a, current)
        ctx.add_residual(b, -current)
        ctx.add_jacobian(a, k, 1.0)
        ctx.add_jacobian(b, k, -1.0)
        v_now = ctx.v(self.nodes[0]) - ctx.v(self.nodes[1])
        if ctx.analysis == "tran" and ctx.dt > 0.0:
            i_prev = ctx.i_branch_prev(self.name)
            # Backward Euler branch equation: v - L (i - i_prev)/dt = 0.
            req = self.inductance / ctx.dt
            ctx.add_residual(k, v_now - req * (current - i_prev))
            ctx.add_jacobian(k, a, 1.0)
            ctx.add_jacobian(k, b, -1.0)
            ctx.add_jacobian(k, k, -req)
        else:
            # DC: inductor is a short; enforce v = 0.
            ctx.add_residual(k, v_now)
            ctx.add_jacobian(k, a, 1.0)
            ctx.add_jacobian(k, b, -1.0)

    def ac_contribute(self, ctx) -> None:
        ctx.stamp_branch_impedance(
            self.name, self.nodes[0], self.nodes[1], 1j * ctx.omega * self.inductance
        )


# ---------------------------------------------------------------------------
# Independent sources
# ---------------------------------------------------------------------------


class VoltageSource(Element):
    """Independent voltage source (DC value or waveform) with AC magnitude."""

    n_branches = 1

    def __init__(
        self,
        name: str,
        node_pos: str,
        node_neg: str,
        value,
        ac_magnitude: float = 0.0,
    ) -> None:
        super().__init__(name, (node_pos, node_neg))
        self.waveform = _as_waveform(value)
        self.ac_magnitude = float(ac_magnitude)

    def source_value(self, ctx) -> float:
        """Instantaneous source value scaled by any homotopy factor."""
        if ctx.analysis == "tran":
            raw = self.waveform.value(ctx.time)
        else:
            raw = self.waveform.dc
        return ctx.source_scale * raw

    def contribute(self, ctx) -> None:
        a = ctx.node(self.nodes[0])
        b = ctx.node(self.nodes[1])
        k = ctx.branch(self.name)
        current = ctx.i_branch(self.name)
        ctx.add_residual(a, current)
        ctx.add_residual(b, -current)
        ctx.add_jacobian(a, k, 1.0)
        ctx.add_jacobian(b, k, -1.0)
        v_now = ctx.v(self.nodes[0]) - ctx.v(self.nodes[1])
        ctx.add_residual(k, v_now - self.source_value(ctx))
        ctx.add_jacobian(k, a, 1.0)
        ctx.add_jacobian(k, b, -1.0)

    def ac_contribute(self, ctx) -> None:
        ctx.stamp_branch_voltage(self.name, self.nodes[0], self.nodes[1], self.ac_magnitude)

    def supply_current_nodes(self) -> Tuple[str, ...]:
        return (self.nodes[0],)


class CurrentSource(Element):
    """Independent current source; current flows from node+ through the
    source to node- (i.e. it is pushed into the node- side network)."""

    def __init__(
        self, name: str, node_pos: str, node_neg: str, value, ac_magnitude: float = 0.0
    ) -> None:
        super().__init__(name, (node_pos, node_neg))
        self.waveform = _as_waveform(value)
        self.ac_magnitude = float(ac_magnitude)

    def source_value(self, ctx) -> float:
        """Instantaneous source current scaled by any homotopy factor."""
        if ctx.analysis == "tran":
            raw = self.waveform.value(ctx.time)
        else:
            raw = self.waveform.dc
        return ctx.source_scale * raw

    def contribute(self, ctx) -> None:
        a = ctx.node(self.nodes[0])
        b = ctx.node(self.nodes[1])
        current = self.source_value(ctx)
        ctx.stamp_current(a, b, current)

    def ac_contribute(self, ctx) -> None:
        ctx.stamp_current_injection(self.nodes[0], self.nodes[1], self.ac_magnitude)


# ---------------------------------------------------------------------------
# Controlled sources
# ---------------------------------------------------------------------------


class VCVS(Element):
    """Voltage-controlled voltage source ``E``: v(out) = gain * v(ctrl)."""

    n_branches = 1

    def __init__(
        self,
        name: str,
        out_pos: str,
        out_neg: str,
        ctrl_pos: str,
        ctrl_neg: str,
        gain: float,
    ) -> None:
        super().__init__(name, (out_pos, out_neg, ctrl_pos, ctrl_neg))
        self.gain = float(gain)

    def contribute(self, ctx) -> None:
        op, on, cp, cn = (ctx.node(n) for n in self.nodes)
        k = ctx.branch(self.name)
        current = ctx.i_branch(self.name)
        ctx.add_residual(op, current)
        ctx.add_residual(on, -current)
        ctx.add_jacobian(op, k, 1.0)
        ctx.add_jacobian(on, k, -1.0)
        v_out = ctx.v(self.nodes[0]) - ctx.v(self.nodes[1])
        v_ctrl = ctx.v(self.nodes[2]) - ctx.v(self.nodes[3])
        ctx.add_residual(k, v_out - self.gain * v_ctrl)
        ctx.add_jacobian(k, op, 1.0)
        ctx.add_jacobian(k, on, -1.0)
        ctx.add_jacobian(k, cp, -self.gain)
        ctx.add_jacobian(k, cn, self.gain)


class VCCS(Element):
    """Voltage-controlled current source ``G``: i(out) = gm * v(ctrl)."""

    def __init__(
        self,
        name: str,
        out_pos: str,
        out_neg: str,
        ctrl_pos: str,
        ctrl_neg: str,
        transconductance: float,
    ) -> None:
        super().__init__(name, (out_pos, out_neg, ctrl_pos, ctrl_neg))
        self.transconductance = float(transconductance)

    def contribute(self, ctx) -> None:
        op, on, cp, cn = (ctx.node(n) for n in self.nodes)
        v_ctrl = ctx.v(self.nodes[2]) - ctx.v(self.nodes[3])
        current = self.transconductance * v_ctrl
        ctx.stamp_current(op, on, current)
        ctx.stamp_transconductance(op, on, cp, cn, self.transconductance)


# ---------------------------------------------------------------------------
# Junction diode
# ---------------------------------------------------------------------------


class Diode(Element):
    """Junction diode with exponential I-V characteristic and voltage limiting."""

    def __init__(
        self,
        name: str,
        anode: str,
        cathode: str,
        saturation_current: float = 1e-14,
        emission_coefficient: float = 1.0,
        temperature: float = 300.15,
    ) -> None:
        super().__init__(name, (anode, cathode))
        if saturation_current <= 0.0:
            raise NetlistError(f"diode {name!r} must have a positive saturation current")
        self.saturation_current = float(saturation_current)
        self.emission_coefficient = float(emission_coefficient)
        self.temperature = float(temperature)

    @property
    def thermal_voltage(self) -> float:
        """``kT/q`` at the configured temperature."""
        return 1.380649e-23 * self.temperature / 1.602176634e-19

    def contribute(self, ctx) -> None:
        a = ctx.node(self.nodes[0])
        b = ctx.node(self.nodes[1])
        n_vt = self.emission_coefficient * self.thermal_voltage
        v = ctx.v(self.nodes[0]) - ctx.v(self.nodes[1])
        # Junction-voltage limiting keeps the exponential finite.
        v_limited = min(v, 40.0 * n_vt)
        exp_term = math.exp(v_limited / n_vt)
        current = self.saturation_current * (exp_term - 1.0)
        conductance = self.saturation_current * exp_term / n_vt
        if v > v_limited:
            # Linear continuation beyond the limiting voltage.
            current += conductance * (v - v_limited)
        ctx.stamp_current(a, b, current)
        ctx.stamp_conductance(a, b, conductance + 1e-12)

    def ac_contribute(self, ctx) -> None:
        v = ctx.op_voltage(self.nodes[0]) - ctx.op_voltage(self.nodes[1])
        n_vt = self.emission_coefficient * self.thermal_voltage
        conductance = self.saturation_current * math.exp(min(v, 40.0 * n_vt) / n_vt) / n_vt
        ctx.stamp_admittance(self.nodes[0], self.nodes[1], conductance)
