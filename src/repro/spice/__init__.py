"""A small SPICE-class circuit simulator.

This subpackage replaces the Cadence SpectreRF engine used by the paper
with a from-scratch modified-nodal-analysis (MNA) simulator that is good
enough to size and verify the 5-stage ring-oscillator VCO at transistor
level:

* :mod:`repro.spice.netlist` -- circuit and node data model,
* :mod:`repro.spice.elements` -- passive elements, independent and
  controlled sources, diode,
* :mod:`repro.spice.mosfet` -- a level-1/level-3-style MOSFET with body
  effect, channel-length modulation and Meyer-style capacitances,
* :mod:`repro.spice.dc` -- Newton-Raphson DC operating point with gmin and
  source stepping homotopies,
* :mod:`repro.spice.transient` -- fixed/adaptive-step transient analysis
  with backward-Euler and trapezoidal integration,
* :mod:`repro.spice.ac` -- small-signal AC analysis,
* :mod:`repro.spice.parser` -- a SPICE-like netlist text parser, and
* :mod:`repro.spice.waveform` -- waveform measurement utilities (period,
  frequency, duty cycle, RMS, settling time).

The engine is intentionally compact but genuinely solves the nonlinear
nodal equations; it is used for bottom-up verification of results obtained
with the calibrated analytical evaluator in :mod:`repro.circuits`.
"""

from repro.spice.ac import ACAnalysis, ACResult
from repro.spice.dc import DCOperatingPoint, DCResult, dc_operating_point
from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    Diode,
    Inductor,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)
from repro.spice.exceptions import (
    AnalysisError,
    ConvergenceError,
    NetlistError,
    SingularMatrixError,
)
from repro.spice.mosfet import MOSFET, MOSFETModel, NMOS_DEFAULT, PMOS_DEFAULT
from repro.spice.netlist import Circuit, GROUND
from repro.spice.parser import parse_netlist
from repro.spice.plan import CircuitPlan, ENGINES, LaneSystem, compile_circuits
from repro.spice.transient import LaneTransientAnalysis, TransientAnalysis, TransientResult
from repro.spice.waveform import Waveform

__all__ = [
    "Circuit",
    "GROUND",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "VCVS",
    "VCCS",
    "Diode",
    "MOSFET",
    "MOSFETModel",
    "NMOS_DEFAULT",
    "PMOS_DEFAULT",
    "dc_operating_point",
    "DCOperatingPoint",
    "DCResult",
    "TransientAnalysis",
    "TransientResult",
    "LaneTransientAnalysis",
    "CircuitPlan",
    "LaneSystem",
    "compile_circuits",
    "ENGINES",
    "ACAnalysis",
    "ACResult",
    "Waveform",
    "parse_netlist",
    "NetlistError",
    "ConvergenceError",
    "AnalysisError",
    "SingularMatrixError",
]
