"""DC operating-point analysis.

A plain damped Newton solve is attempted first; if it fails to converge the
two classic homotopies are applied in sequence:

* **gmin stepping** -- a large conductance from every node to ground is
  stepped down decade by decade, re-using the previous solution as the
  starting point;
* **source stepping** -- all independent sources are ramped from zero to
  their full value.

The result object provides node voltages by name, branch currents and the
total current drawn from every voltage source, which is how the test
benches measure supply current.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.spice.elements import VoltageSource
from repro.spice.exceptions import AnalysisError, ConvergenceError
from repro.spice.mna import NewtonOptions, NewtonSolver
from repro.spice.mosfet import MOSFET, OperatingPoint
from repro.spice.netlist import Circuit, GROUND

__all__ = ["DCResult", "DCOperatingPoint", "dc_operating_point"]


@dataclass
class DCResult:
    """Solved DC operating point of a circuit."""

    circuit: Circuit
    x: np.ndarray
    iterations: int

    def voltage(self, node: str) -> float:
        """Node voltage (0.0 for ground)."""
        if node == GROUND:
            return 0.0
        index = self.circuit.node_index()[node]
        return float(self.x[index])

    @property
    def voltages(self) -> Dict[str, float]:
        """All node voltages keyed by node name."""
        return {node: self.voltage(node) for node in self.circuit.nodes}

    def branch_current(self, element_name: str) -> float:
        """Branch current of a voltage source / inductor / VCVS."""
        index = self.circuit.branch_index()[element_name]
        return float(self.x[index])

    def source_current(self, source_name: str) -> float:
        """Current delivered by a voltage source (positive = sourcing)."""
        # The branch current is defined as flowing from node+ through the
        # source to node-, so the current delivered to the circuit is its
        # negative.
        return -self.branch_current(source_name)

    def supply_current(self) -> float:
        """Total current drawn from all DC voltage sources (absolute sum)."""
        total = 0.0
        for source in self.circuit.elements_of_type(VoltageSource):
            total += abs(self.branch_current(source.name))
        return total

    def device_operating_point(self, device_name: str) -> OperatingPoint:
        """Small-signal operating point of a named MOSFET."""
        device = self.circuit.element(device_name)
        if not isinstance(device, MOSFET):
            raise TypeError(f"{device_name!r} is not a MOSFET")
        vd, vg, vs, vb = (self.voltage(n) for n in device.nodes)
        return device.operating_point(vd, vg, vs, vb)


class DCOperatingPoint:
    """DC operating-point analysis with gmin and source stepping homotopies.

    ``engine`` selects the assembly backend: ``"reference"`` (per-element
    Python stamping, byte-stable) or ``"compiled"`` (vectorised stamp plan
    from :mod:`repro.spice.plan`, tolerance-equivalent).  The compiled
    engine reports a singular Jacobian as a :class:`ConvergenceError`
    instead of :class:`~repro.spice.exceptions.SingularMatrixError`.
    """

    def __init__(
        self,
        circuit: Circuit,
        options: NewtonOptions | None = None,
        gmin_steps: int = 8,
        source_steps: int = 10,
        engine: str = "reference",
    ) -> None:
        if engine not in ("reference", "compiled"):
            raise AnalysisError(f"unknown DC engine {engine!r}")
        self.circuit = circuit
        self.options = options or NewtonOptions()
        self.gmin_steps = gmin_steps
        self.source_steps = source_steps
        self.engine = engine

    def _run_compiled(self, x0: Optional[np.ndarray]) -> DCResult:
        from repro.spice.plan import LaneSystem, compile_circuits, lane_dc_solve

        plan = compile_circuits([self.circuit])
        system = LaneSystem(plan)
        start = None
        if x0 is not None:
            start = np.zeros((1, plan.pad_size))
            start[0, : plan.n_unknowns] = np.asarray(x0, dtype=float)
        x, converged, iterations = lane_dc_solve(
            system, self.options, start, self.gmin_steps, self.source_steps
        )
        if not converged[0]:
            raise ConvergenceError(
                "compiled DC operating point did not converge",
                iterations=int(iterations[0]),
            )
        return DCResult(self.circuit, x[0, : plan.n_unknowns].copy(), int(iterations[0]))

    def run(self, x0: Optional[np.ndarray] = None) -> DCResult:
        """Solve for the DC operating point."""
        if self.engine == "compiled":
            return self._run_compiled(x0)
        solver = NewtonSolver(self.circuit, self.options)
        try:
            result = solver.solve(x0, analysis="dc")
            return DCResult(self.circuit, result.x, result.iterations)
        except ConvergenceError:
            pass
        # gmin stepping: start with a heavy shunt conductance and relax it.
        x = np.zeros(self.circuit.n_unknowns) if x0 is None else np.array(x0, dtype=float)
        iterations = 0
        try:
            gmin_values = np.logspace(-3, np.log10(self.options.gmin), self.gmin_steps)
            for gmin in gmin_values:
                result = solver.solve(x, analysis="dc", gmin=float(gmin))
                x = result.x
                iterations += result.iterations
            result = solver.solve(x, analysis="dc")
            return DCResult(self.circuit, result.x, iterations + result.iterations)
        except ConvergenceError:
            pass
        # Source stepping: ramp all independent sources from zero.
        x = np.zeros(self.circuit.n_unknowns)
        iterations = 0
        scales = np.linspace(0.1, 1.0, self.source_steps)
        for scale in scales:
            result = solver.solve(x, analysis="dc", source_scale=float(scale))
            x = result.x
            iterations += result.iterations
        return DCResult(self.circuit, x, iterations)


def dc_operating_point(circuit: Circuit, options: NewtonOptions | None = None) -> DCResult:
    """Convenience wrapper: run a DC operating-point analysis."""
    return DCOperatingPoint(circuit, options).run()
