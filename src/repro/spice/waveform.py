"""Waveform container and measurement utilities.

Transient analysis returns :class:`Waveform` objects (time/value pairs)
with the measurements the VCO and PLL test benches need: threshold
crossings, period, frequency, duty cycle, RMS/average value, peak-to-peak,
settling time and period jitter statistics.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["Waveform"]


class Waveform:
    """A sampled signal ``value(time)``."""

    def __init__(self, time: Sequence[float], values: Sequence[float], name: str = "") -> None:
        t = np.asarray(time, dtype=float)
        v = np.asarray(values, dtype=float)
        if t.ndim != 1 or v.ndim != 1 or t.size != v.size:
            raise ValueError("time and values must be 1-D arrays of equal length")
        if t.size == 0:
            raise ValueError("a waveform needs at least one sample")
        if np.any(np.diff(t) < 0.0):
            order = np.argsort(t, kind="stable")
            t = t[order]
            v = v[order]
        self.time = t
        self.values = v
        self.name = name

    # -- basic accessors -----------------------------------------------------------

    def __len__(self) -> int:
        return int(self.time.size)

    @property
    def duration(self) -> float:
        """Total simulated time span."""
        return float(self.time[-1] - self.time[0])

    def at(self, t: float) -> float:
        """Linearly interpolated value at time ``t`` (clamped to the span)."""
        return float(np.interp(t, self.time, self.values))

    def window(self, t_start: float, t_stop: float | None = None) -> "Waveform":
        """Sub-waveform restricted to ``[t_start, t_stop]``."""
        t_stop = self.time[-1] if t_stop is None else t_stop
        mask = (self.time >= t_start) & (self.time <= t_stop)
        if not np.any(mask):
            raise ValueError("requested window contains no samples")
        return Waveform(self.time[mask], self.values[mask], self.name)

    # -- scalar measurements ----------------------------------------------------------

    def minimum(self) -> float:
        """Smallest sample value."""
        return float(np.min(self.values))

    def maximum(self) -> float:
        """Largest sample value."""
        return float(np.max(self.values))

    def peak_to_peak(self) -> float:
        """Peak-to-peak swing."""
        return self.maximum() - self.minimum()

    def average(self) -> float:
        """Time-weighted average (trapezoidal integration)."""
        if len(self) == 1:
            return float(self.values[0])
        return float(np.trapezoid(self.values, self.time) / self.duration)

    def rms(self) -> float:
        """Root-mean-square value (time weighted)."""
        if len(self) == 1:
            return float(abs(self.values[0]))
        return float(np.sqrt(np.trapezoid(self.values**2, self.time) / self.duration))

    # -- crossings and periods -----------------------------------------------------------

    def crossings(self, threshold: float, direction: str = "rise") -> np.ndarray:
        """Times at which the signal crosses ``threshold``.

        ``direction`` is ``"rise"``, ``"fall"`` or ``"both"``.  Crossing
        times are linearly interpolated between samples.
        """
        if direction not in ("rise", "fall", "both"):
            raise ValueError("direction must be 'rise', 'fall' or 'both'")
        v = self.values - threshold
        t = self.time
        crossing_times: List[float] = []
        signs = np.sign(v)
        for i in range(1, len(v)):
            if signs[i - 1] == signs[i] or signs[i] == 0 and signs[i - 1] == 0:
                continue
            rising = v[i - 1] < 0.0 <= v[i]
            falling = v[i - 1] > 0.0 >= v[i]
            if (direction == "rise" and not rising) or (direction == "fall" and not falling):
                continue
            if not (rising or falling):
                continue
            dv = v[i] - v[i - 1]
            frac = 0.0 if dv == 0.0 else -v[i - 1] / dv
            crossing_times.append(float(t[i - 1] + frac * (t[i] - t[i - 1])))
        return np.asarray(crossing_times)

    def periods(self, threshold: float | None = None) -> np.ndarray:
        """Successive periods measured between rising-edge crossings."""
        if threshold is None:
            threshold = 0.5 * (self.minimum() + self.maximum())
        edges = self.crossings(threshold, "rise")
        if edges.size < 2:
            return np.array([])
        return np.diff(edges)

    def period(self, threshold: float | None = None, skip: int = 1) -> float:
        """Average steady-state period (the first ``skip`` periods are dropped)."""
        periods = self.periods(threshold)
        if periods.size <= skip:
            if periods.size == 0:
                raise ValueError(f"waveform {self.name!r} has no full period to measure")
            skip = 0
        return float(np.mean(periods[skip:]))

    def frequency(self, threshold: float | None = None, skip: int = 1) -> float:
        """Average oscillation frequency."""
        return 1.0 / self.period(threshold, skip)

    def duty_cycle(self, threshold: float | None = None) -> float:
        """Fraction of one period spent above the threshold."""
        if threshold is None:
            threshold = 0.5 * (self.minimum() + self.maximum())
        rises = self.crossings(threshold, "rise")
        falls = self.crossings(threshold, "fall")
        if rises.size < 2 or falls.size < 1:
            raise ValueError(f"waveform {self.name!r} does not toggle enough for a duty cycle")
        period = float(np.mean(np.diff(rises)))
        # Use the first fall after the first rise.
        after = falls[falls > rises[0]]
        if after.size == 0:
            raise ValueError(f"waveform {self.name!r} never falls after rising")
        high_time = float(after[0] - rises[0])
        return high_time / period

    def period_jitter(self, threshold: float | None = None, skip: int = 1) -> float:
        """Standard deviation of the period (cycle-to-cycle RMS jitter)."""
        periods = self.periods(threshold)
        if periods.size <= skip + 1:
            skip = 0
        if periods.size < 2:
            return 0.0
        return float(np.std(periods[skip:], ddof=1)) if periods[skip:].size > 1 else 0.0

    def settling_time(self, final_value: float | None = None, tolerance: float = 0.02) -> float:
        """Time after which the signal stays within ``tolerance`` of its final value.

        ``tolerance`` is relative to the final value (or to the waveform
        swing when the final value is close to zero).
        """
        if final_value is None:
            final_value = float(self.values[-1])
        scale = max(abs(final_value), self.peak_to_peak(), 1e-30)
        band = tolerance * scale
        outside = np.abs(self.values - final_value) > band
        if not np.any(outside):
            return float(self.time[0])
        last_outside = int(np.max(np.flatnonzero(outside)))
        if last_outside + 1 >= len(self):
            return float(self.time[-1])
        return float(self.time[last_outside + 1])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Waveform({self.name!r}, n={len(self)}, span={self.duration:.3e}s)"
