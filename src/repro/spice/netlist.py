"""Circuit and element data model.

A :class:`Circuit` is an ordered collection of :class:`Element` instances
connected between named nodes.  The node name ``"0"`` (alias ``"gnd"``)
is the global reference and is never assigned an unknown.

Elements describe themselves to the analyses through a small protocol:

``contribute(ctx)``
    Add the element's contribution to the nonlinear residual vector and
    Jacobian matrix for the current Newton iterate.  The
    :class:`~repro.spice.mna.StampContext` passed in exposes the analysis
    type (``"dc"`` or ``"tran"``), the present voltage estimates, previous
    time-point values and integration coefficients.

``ac_contribute(ctx)``
    Add the element's linearised (small-signal) contribution for AC
    analysis at the operating point stored in the context.

``n_branches``
    Number of extra MNA branch-current unknowns the element needs
    (voltage sources, inductors and VCVS need one).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.spice.exceptions import NetlistError

__all__ = ["GROUND", "Element", "Circuit"]

#: Canonical name of the reference node.
GROUND = "0"

#: Accepted aliases for the reference node (case-insensitive).
_GROUND_ALIASES = {"0", "gnd", "ground", "vss!"}


def canonical_node(name: str) -> str:
    """Normalise a node name (ground aliases collapse to ``"0"``)."""
    text = str(name).strip()
    if not text:
        raise NetlistError("node names must be non-empty")
    if text.lower() in _GROUND_ALIASES:
        return GROUND
    return text


class Element:
    """Base class of every circuit element."""

    #: Number of additional branch-current unknowns required by the element.
    n_branches: int = 0

    def __init__(self, name: str, nodes: Sequence[str]) -> None:
        if not name:
            raise NetlistError("element names must be non-empty")
        self.name = str(name)
        self.nodes: Tuple[str, ...] = tuple(canonical_node(n) for n in nodes)
        if not self.nodes:
            raise NetlistError(f"element {self.name!r} must connect to at least one node")

    # -- protocol -------------------------------------------------------------

    def contribute(self, ctx) -> None:
        """Stamp the large-signal residual/Jacobian contribution."""
        raise NotImplementedError

    def ac_contribute(self, ctx) -> None:
        """Stamp the small-signal (AC) contribution; defaults to nothing."""

    def supply_current_nodes(self) -> Tuple[str, ...]:
        """Nodes through which supply current is drawn (for power metering)."""
        return ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r}, nodes={self.nodes})"


class Circuit:
    """An ordered, validated collection of circuit elements."""

    def __init__(self, title: str = "") -> None:
        self.title = title
        self._elements: List[Element] = []
        self._element_index: Dict[str, Element] = {}
        #: Cached (nodes, node_index, branch_index, n_branches) tuple;
        #: invalidated whenever the element list changes.
        self._topology: Optional[Tuple[List[str], Dict[str, int], Dict[str, int], int]] = None

    # -- construction -----------------------------------------------------------

    def add(self, element: Element) -> Element:
        """Add one element; element names must be unique within the circuit."""
        key = element.name.lower()
        if key in self._element_index:
            raise NetlistError(f"duplicate element name {element.name!r}")
        self._elements.append(element)
        self._element_index[key] = element
        self._topology = None
        return element

    def extend(self, elements: Iterable[Element]) -> None:
        """Add several elements."""
        for element in elements:
            self.add(element)

    def remove(self, name: str) -> None:
        """Remove the element called ``name``."""
        key = name.lower()
        element = self._element_index.pop(key, None)
        if element is None:
            raise NetlistError(f"no element named {name!r}")
        self._elements.remove(element)
        self._topology = None

    # -- lookup -----------------------------------------------------------------

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._element_index

    def element(self, name: str) -> Element:
        """Return the element called ``name`` (case-insensitive)."""
        try:
            return self._element_index[name.lower()]
        except KeyError as exc:
            raise NetlistError(f"no element named {name!r}") from exc

    def elements_of_type(self, element_type) -> List[Element]:
        """All elements that are instances of ``element_type``."""
        return [e for e in self._elements if isinstance(e, element_type)]

    @property
    def elements(self) -> List[Element]:
        """The elements in insertion order."""
        return list(self._elements)

    # -- node bookkeeping --------------------------------------------------------

    def _topology_maps(self) -> Tuple[List[str], Dict[str, int], Dict[str, int], int]:
        """Node list and index maps, built once and cached until the circuit
        changes (``add`` / ``remove`` invalidate).  The analyses construct a
        stamp context on every Newton iteration, so rebuilding these dicts
        from scratch each time dominated reference-engine assembly cost."""
        if self._topology is None:
            seen: Dict[str, None] = {}
            for element in self._elements:
                for node in element.nodes:
                    if node != GROUND and node not in seen:
                        seen[node] = None
            nodes = list(seen)
            node_index = {node: i for i, node in enumerate(nodes)}
            branch_index: Dict[str, int] = {}
            offset = len(nodes)
            for element in self._elements:
                if element.n_branches:
                    branch_index[element.name] = offset
                    offset += element.n_branches
            self._topology = (nodes, node_index, branch_index, offset - len(nodes))
        return self._topology

    @property
    def nodes(self) -> List[str]:
        """All non-ground node names in first-appearance order."""
        return list(self._topology_maps()[0])

    def node_index(self) -> Dict[str, int]:
        """Mapping from non-ground node name to unknown index.

        The returned dictionary is cached on the circuit; treat it as
        read-only.
        """
        return self._topology_maps()[1]

    @property
    def n_nodes(self) -> int:
        """Number of non-ground nodes."""
        return len(self._topology_maps()[0])

    @property
    def n_branches(self) -> int:
        """Total number of extra branch-current unknowns."""
        return self._topology_maps()[3]

    @property
    def n_unknowns(self) -> int:
        """Total size of the MNA unknown vector."""
        return self.n_nodes + self.n_branches

    def branch_index(self) -> Dict[str, int]:
        """Mapping from element name to its first branch-unknown index.

        The returned dictionary is cached on the circuit; treat it as
        read-only.
        """
        return self._topology_maps()[2]

    # -- validation ---------------------------------------------------------------

    def validate(self) -> None:
        """Check basic well-formedness of the circuit.

        Raises :class:`NetlistError` when the circuit is empty, has no
        ground reference, or contains a node touched by only one element
        terminal (a floating node that would make the MNA matrix singular).
        """
        if not self._elements:
            raise NetlistError("circuit contains no elements")
        touches_ground = any(GROUND in element.nodes for element in self._elements)
        if not touches_ground:
            raise NetlistError("circuit has no connection to the ground node '0'")
        terminal_counts: Dict[str, int] = {}
        for element in self._elements:
            for node in element.nodes:
                if node == GROUND:
                    continue
                terminal_counts[node] = terminal_counts.get(node, 0) + 1
        dangling = sorted(node for node, count in terminal_counts.items() if count < 2)
        if dangling:
            raise NetlistError(
                "floating node(s) with a single connection: " + ", ".join(dangling)
            )

    # -- convenience ---------------------------------------------------------------

    def copy(self, title: Optional[str] = None) -> "Circuit":
        """Shallow copy (elements are shared; the container is new)."""
        duplicate = Circuit(self.title if title is None else title)
        for element in self._elements:
            duplicate.add(element)
        return duplicate

    def summary(self) -> str:
        """Human-readable one-line-per-element description."""
        lines = [f"* {self.title or 'untitled circuit'}"]
        lines.append(f"* {len(self._elements)} elements, {self.n_nodes} nodes")
        for element in self._elements:
            lines.append(f"{element.name} " + " ".join(element.nodes))
        return "\n".join(lines)
