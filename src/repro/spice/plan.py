"""Compiled stamp-plan MNA engine with lane-parallel assembly.

The reference engine (:mod:`repro.spice.mna`) re-stamps the circuit
element by element in pure Python on every Newton iteration of every time
step.  This module compiles a :class:`~repro.spice.netlist.Circuit` *once*
into per-element-type index and parameter arrays and then performs
assembly as vectorised scatter-adds into reused buffers:

* :func:`compile_circuits` builds a :class:`CircuitPlan` from ``n_lanes``
  circuits that share one topology (same element types, names and nodes at
  every position) but may carry different parameter values — exactly the
  (design, technology, mismatch) triples that bottom-up verification fans
  out.
* :class:`LaneSystem` owns the reused ``(n_lanes, n, n)`` Jacobian and
  ``(n_lanes, n)`` residual buffers and assembles all lanes at once;
  MOSFET and diode model equations are evaluated array-wise over every
  (lane, device) pair via :class:`~repro.spice.mosfet.MOSFETArrays`.
* :func:`lane_newton` / :func:`lane_dc_solve` mirror the reference
  Newton-Raphson semantics (damping, voltage-step limiting, gmin shunt,
  gmin/source-stepping homotopies) with per-lane convergence masks and one
  batched ``np.linalg.solve`` per iteration.

Contract: results are **tolerance-equivalent** to the reference engine,
not byte-equal.  Two deliberate deviations are documented here:

* the reference engine adds the tiny 1e-12 conditioning shunt of diodes
  and MOSFETs to the Jacobian only; the plan folds it into the static
  matrix, so it also contributes ``1e-12 * v`` to the residual — an
  effect at the solver tolerance floor;
* a lane whose Jacobian is singular is reported as non-converged instead
  of raising :class:`~repro.spice.exceptions.SingularMatrixError`, so
  that one pathological lane cannot abort its batch.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    DCWaveform,
    Diode,
    Inductor,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)
from repro.spice.exceptions import NetlistError
from repro.spice.mna import NewtonOptions
from repro.spice.mosfet import MOSFET, MOSFETArrays
from repro.spice.netlist import Circuit, GROUND

__all__ = [
    "ENGINES",
    "CircuitPlan",
    "LaneSystem",
    "compile_circuits",
    "lane_newton",
    "lane_dc_solve",
]

#: Engine identifiers accepted by the analyses and evaluators.
ENGINES = ("reference", "compiled", "lanes")


class _SourceTable:
    """Waveform values of one source group, for all lanes at per-lane times.

    When every lane of every source is a plain :class:`DCWaveform` (the
    ring-VCO hot path) the values are precomputed once; otherwise the
    Python waveforms are evaluated per lane and per source.
    """

    def __init__(self, waveforms_by_lane: Sequence[Sequence[object]]) -> None:
        self._waveforms = [list(lane) for lane in waveforms_by_lane]
        self.dc_values = np.array(
            [[waveform.dc for waveform in lane] for lane in self._waveforms], dtype=float
        )
        self._static = all(
            isinstance(waveform, DCWaveform) for lane in self._waveforms for waveform in lane
        )

    def values(self, times: np.ndarray) -> np.ndarray:
        """Source values at each lane's own simulation time, shape (L, K)."""
        if self._static:
            return self.dc_values
        return np.array(
            [
                [waveform.value(float(t)) for waveform in lane]
                for t, lane in zip(times, self._waveforms)
            ],
            dtype=float,
        )


class CircuitPlan:
    """Pre-compiled index/parameter arrays of ``n_lanes`` same-topology circuits.

    The unknown vector is padded with one extra slot (index ``n_unknowns``)
    that stands in for the ground node: stamps touching ground land in the
    pad row/column, the pad entry of ``x`` is pinned to zero, and solves
    operate on the leading ``n_unknowns`` block — no per-stamp ground
    branching is needed.
    """

    def __init__(self, circuits: Sequence[Circuit]) -> None:
        if not circuits:
            raise NetlistError("compile_circuits needs at least one circuit")
        base = circuits[0]
        base.validate()
        for lane, other in enumerate(circuits[1:], start=1):
            self._check_same_topology(base, other, lane)
        self.circuits: List[Circuit] = list(circuits)
        self.n_lanes = len(self.circuits)
        self.n_nodes = base.n_nodes
        self.n_unknowns = base.n_unknowns
        self.pad_size = self.n_unknowns + 1
        node_index = base.node_index()
        branch_index = base.branch_index()
        pad = self.n_unknowns

        def idx(node: str) -> int:
            return pad if node == GROUND else node_index[node]

        lanes = range(self.n_lanes)
        n_elements = len(base.elements)
        columns = [[circuit.elements[i] for circuit in self.circuits] for i in range(n_elements)]

        # -- static linear stamps -------------------------------------------------
        a_static = np.zeros((self.n_lanes, self.pad_size, self.pad_size))

        def stamp_conductance(a: int, b: int, g: np.ndarray) -> None:
            a_static[:, a, a] += g
            a_static[:, b, b] += g
            a_static[:, a, b] -= g
            a_static[:, b, a] -= g

        cap_a: List[int] = []
        cap_b: List[int] = []
        cap_c: List[List[float]] = []
        ind_a: List[int] = []
        ind_b: List[int] = []
        ind_k: List[int] = []
        ind_l: List[List[float]] = []
        vs_k: List[int] = []
        vs_waveforms: List[List[object]] = []
        is_a: List[int] = []
        is_b: List[int] = []
        is_waveforms: List[List[object]] = []
        d_a: List[int] = []
        d_b: List[int] = []
        d_isat: List[List[float]] = []
        d_nvt: List[List[float]] = []
        mos_nodes: List[Tuple[int, int, int, int]] = []
        mos_devices: List[List[MOSFET]] = []

        def add_capacitor(node_a: str, node_b: str, values: List[float]) -> None:
            a, b = idx(node_a), idx(node_b)
            if a == b or not any(v > 0.0 for v in values):
                return
            cap_a.append(a)
            cap_b.append(b)
            cap_c.append(values)

        for column in columns:
            element = column[0]
            if isinstance(element, Resistor):
                stamp_conductance(
                    idx(element.nodes[0]),
                    idx(element.nodes[1]),
                    np.array([column[lane].conductance for lane in lanes]),
                )
            elif isinstance(element, Capacitor):
                add_capacitor(
                    element.nodes[0],
                    element.nodes[1],
                    [column[lane].capacitance for lane in lanes],
                )
            elif isinstance(element, Inductor):
                a, b = idx(element.nodes[0]), idx(element.nodes[1])
                k = branch_index[element.name]
                a_static[:, a, k] += 1.0
                a_static[:, b, k] -= 1.0
                a_static[:, k, a] += 1.0
                a_static[:, k, b] -= 1.0
                ind_a.append(a)
                ind_b.append(b)
                ind_k.append(k)
                ind_l.append([column[lane].inductance for lane in lanes])
            elif isinstance(element, VoltageSource):
                a, b = idx(element.nodes[0]), idx(element.nodes[1])
                k = branch_index[element.name]
                a_static[:, a, k] += 1.0
                a_static[:, b, k] -= 1.0
                a_static[:, k, a] += 1.0
                a_static[:, k, b] -= 1.0
                vs_k.append(k)
                vs_waveforms.append([column[lane].waveform for lane in lanes])
            elif isinstance(element, CurrentSource):
                is_a.append(idx(element.nodes[0]))
                is_b.append(idx(element.nodes[1]))
                is_waveforms.append([column[lane].waveform for lane in lanes])
            elif isinstance(element, VCVS):
                op, on, cp, cn = (idx(n) for n in element.nodes)
                k = branch_index[element.name]
                a_static[:, op, k] += 1.0
                a_static[:, on, k] -= 1.0
                a_static[:, k, op] += 1.0
                a_static[:, k, on] -= 1.0
                gain = np.array([column[lane].gain for lane in lanes])
                a_static[:, k, cp] -= gain
                a_static[:, k, cn] += gain
            elif isinstance(element, VCCS):
                op, on, cp, cn = (idx(n) for n in element.nodes)
                gm = np.array([column[lane].transconductance for lane in lanes])
                a_static[:, op, cp] += gm
                a_static[:, op, cn] -= gm
                a_static[:, on, cp] -= gm
                a_static[:, on, cn] += gm
            elif isinstance(element, Diode):
                a, b = idx(element.nodes[0]), idx(element.nodes[1])
                stamp_conductance(a, b, np.full(self.n_lanes, 1e-12))
                d_a.append(a)
                d_b.append(b)
                d_isat.append([column[lane].saturation_current for lane in lanes])
                d_nvt.append(
                    [
                        column[lane].emission_coefficient * column[lane].thermal_voltage
                        for lane in lanes
                    ]
                )
            elif isinstance(element, MOSFET):
                nd, ng, ns, nb = (idx(n) for n in element.nodes)
                stamp_conductance(nd, ns, np.full(self.n_lanes, 1e-12))
                mos_nodes.append((nd, ng, ns, nb))
                mos_devices.append([column[lane] for lane in lanes])
                # Meyer-style gate capacitances are bias-independent, so they
                # expand into the general capacitor group at compile time.
                pair_order = list(column[0].gate_capacitances())
                per_lane = [column[lane].gate_capacitances() for lane in lanes]
                for pair in pair_order:
                    add_capacitor(pair[0], pair[1], [caps[pair] for caps in per_lane])
            else:
                raise NetlistError(
                    f"element {element.name!r} of type {type(element).__name__} is not "
                    "supported by the compiled engine"
                )

        self.a_static = a_static
        P = self.pad_size

        def as_index(values: List[int]) -> np.ndarray:
            return np.asarray(values, dtype=np.intp)

        def as_params(values: List[List[float]]) -> np.ndarray:
            # stored per element -> transpose to (n_lanes, n_elements)
            array = np.asarray(values, dtype=float)
            return array.T if array.size else array.reshape(self.n_lanes, 0)

        # Capacitors (including expanded MOSFET gate capacitances).
        self.cap_a = as_index(cap_a)
        self.cap_b = as_index(cap_b)
        self.cap_c = as_params(cap_c)
        self.n_caps = self.cap_a.size
        a, b = self.cap_a, self.cap_b
        self.cap_jac_idx = np.concatenate([a * P + a, b * P + b, a * P + b, b * P + a])
        self.cap_res_rows = np.concatenate([a, b])

        # Inductors.
        self.ind_a = as_index(ind_a)
        self.ind_b = as_index(ind_b)
        self.ind_k = as_index(ind_k)
        self.ind_l = as_params(ind_l)
        self.n_inductors = self.ind_k.size

        # Independent sources.
        self.vs_k = as_index(vs_k)
        self.vs_table = _SourceTable(list(map(list, zip(*vs_waveforms))) or [[]] * self.n_lanes)
        self.n_vsources = self.vs_k.size
        self.is_a = as_index(is_a)
        self.is_b = as_index(is_b)
        self.is_table = _SourceTable(list(map(list, zip(*is_waveforms))) or [[]] * self.n_lanes)
        self.is_res_rows = np.concatenate([self.is_a, self.is_b])
        self.n_isources = self.is_a.size

        # Diodes.
        self.d_a = as_index(d_a)
        self.d_b = as_index(d_b)
        self.d_isat = as_params(d_isat)
        self.d_nvt = as_params(d_nvt)
        self.n_diodes = self.d_a.size
        a, b = self.d_a, self.d_b
        self.d_jac_idx = np.concatenate([a * P + a, b * P + b, a * P + b, b * P + a])
        self.d_res_rows = np.concatenate([a, b])

        # MOSFETs.
        self.n_mosfets = len(mos_nodes)
        if self.n_mosfets:
            nodes = np.asarray(mos_nodes, dtype=np.intp)
            self.mos_d, self.mos_g, self.mos_s, self.mos_b = (nodes[:, i] for i in range(4))
            self.mos_arrays = MOSFETArrays.from_devices(list(map(list, zip(*mos_devices))))
            nd, ng, ns, nb = self.mos_d, self.mos_g, self.mos_s, self.mos_b
            self.mos_jac_idx = np.concatenate(
                [
                    nd * P + nd, nd * P + ng, nd * P + ns, nd * P + nb,
                    ns * P + nd, ns * P + ng, ns * P + ns, ns * P + nb,
                ]
            )
            self.mos_res_rows = np.concatenate([nd, ns])
        else:
            self.mos_d = self.mos_g = self.mos_s = self.mos_b = as_index([])
            self.mos_arrays = None
            self.mos_jac_idx = as_index([])
            self.mos_res_rows = as_index([])

    @staticmethod
    def _check_same_topology(base: Circuit, other: Circuit, lane: int) -> None:
        base_elements = base.elements
        other_elements = other.elements
        if len(base_elements) != len(other_elements):
            raise NetlistError(
                f"lane {lane} has {len(other_elements)} elements, lane 0 has "
                f"{len(base_elements)}; all lanes must share one topology"
            )
        for position, (ref, elem) in enumerate(zip(base_elements, other_elements)):
            if (
                type(ref) is not type(elem)
                or ref.name != elem.name
                or ref.nodes != elem.nodes
                or ref.n_branches != elem.n_branches
            ):
                raise NetlistError(
                    f"lane {lane} element #{position} ({elem.name!r}) does not match "
                    f"lane 0 ({ref.name!r}); all lanes must share one topology"
                )
            if isinstance(ref, MOSFET) and ref.model.polarity != elem.model.polarity:
                raise NetlistError(
                    f"lane {lane} MOSFET {elem.name!r} changes polarity across lanes"
                )


def compile_circuits(circuits: Sequence[Circuit]) -> CircuitPlan:
    """Compile same-topology circuits (one per lane) into a stamp plan."""
    return CircuitPlan(circuits)


class LaneSystem:
    """Reused assembly buffers plus per-analysis constant terms.

    The nonlinear residual decomposes as ``res = A_step x + b_step + n(x)``
    where ``A_step`` collects every linear stamp of the current analysis
    step (static stamps, capacitor/inductor companion conductances, gmin)
    and ``n(x)`` holds only the diode and MOSFET channel contributions that
    must be re-evaluated each Newton iteration.
    """

    def __init__(self, plan: CircuitPlan) -> None:
        self.plan = plan
        L, P = plan.n_lanes, plan.pad_size
        self.a_step = np.zeros((L, P, P))
        self.b_step = np.zeros((L, P))
        self.jacobian = np.zeros((L, P, P))
        self.residual = np.zeros((L, P))
        self._lane = np.arange(L)[:, None]
        self._node_diag = np.arange(plan.n_nodes)
        self.analysis = "dc"

    # -- per-step constant terms -----------------------------------------------------

    def _begin(self, gmin: float) -> None:
        self.a_step[:] = self.plan.a_static
        if gmin > 0.0:
            self.a_step[:, self._node_diag, self._node_diag] += gmin
        self.b_step[:] = 0.0

    def begin_dc(self, gmin: float, source_scale: float = 1.0) -> None:
        """Prepare the linear part of a DC solve (all lanes)."""
        plan = self.plan
        self.analysis = "dc"
        self._begin(gmin)
        if plan.n_vsources:
            self.b_step[:, plan.vs_k] -= source_scale * plan.vs_table.dc_values
        if plan.n_isources:
            values = source_scale * plan.is_table.dc_values
            np.add.at(
                self.b_step,
                (self._lane, plan.is_res_rows),
                np.concatenate([values, -values], axis=1),
            )

    def begin_tran(
        self,
        time: np.ndarray,
        dt: np.ndarray,
        x_prev: np.ndarray,
        integrator: str,
        cap_i_prev: Optional[np.ndarray],
        gmin: float,
        source_scale: float = 1.0,
    ) -> None:
        """Prepare the linear part of one transient Newton solve.

        ``time`` and ``dt`` are per-lane arrays so lanes may refine their
        time steps independently; ``x_prev`` is the padded solution at each
        lane's previous accepted time point.
        """
        plan = self.plan
        self.analysis = "tran"
        self._begin(gmin)
        dt_col = dt[:, None]
        if plan.n_caps:
            factor = 2.0 if integrator == "trap" else 1.0
            geq = factor * plan.cap_c / dt_col
            np.add.at(
                self.a_step.reshape(plan.n_lanes, -1),
                (self._lane, plan.cap_jac_idx),
                np.concatenate([geq, geq, -geq, -geq], axis=1),
            )
            v_prev = x_prev[:, plan.cap_a] - x_prev[:, plan.cap_b]
            const = -geq * v_prev
            if integrator == "trap" and cap_i_prev is not None:
                const = const - cap_i_prev
            np.add.at(
                self.b_step,
                (self._lane, plan.cap_res_rows),
                np.concatenate([const, -const], axis=1),
            )
        if plan.n_inductors:
            req = plan.ind_l / dt_col
            self.a_step[:, plan.ind_k, plan.ind_k] -= req
            self.b_step[:, plan.ind_k] += req * x_prev[:, plan.ind_k]
        if plan.n_vsources:
            self.b_step[:, plan.vs_k] -= source_scale * plan.vs_table.values(time)
        if plan.n_isources:
            values = source_scale * plan.is_table.values(time)
            np.add.at(
                self.b_step,
                (self._lane, plan.is_res_rows),
                np.concatenate([values, -values], axis=1),
            )

    # -- assembly -----------------------------------------------------------------------

    def assemble(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Residual and Jacobian of every lane at the padded estimate ``x``."""
        plan = self.plan
        jac = self.jacobian
        res = self.residual
        jac[:] = self.a_step
        res[:] = np.matmul(self.a_step, x[:, :, None])[:, :, 0]
        res += self.b_step
        jac_flat = jac.reshape(plan.n_lanes, -1)
        with np.errstate(over="ignore", under="ignore", invalid="ignore", divide="ignore"):
            if plan.n_diodes:
                v = x[:, plan.d_a] - x[:, plan.d_b]
                n_vt = plan.d_nvt
                v_limited = np.minimum(v, 40.0 * n_vt)
                exp_term = np.exp(v_limited / n_vt)
                current = plan.d_isat * (exp_term - 1.0)
                conductance = plan.d_isat * exp_term / n_vt
                current = np.where(
                    v > v_limited, current + conductance * (v - v_limited), current
                )
                np.add.at(
                    res,
                    (self._lane, plan.d_res_rows),
                    np.concatenate([current, -current], axis=1),
                )
                np.add.at(
                    jac_flat,
                    (self._lane, plan.d_jac_idx),
                    np.concatenate(
                        [conductance, conductance, -conductance, -conductance], axis=1
                    ),
                )
            if plan.n_mosfets:
                vd = x[:, plan.mos_d]
                vg = x[:, plan.mos_g]
                vs = x[:, plan.mos_s]
                vb = x[:, plan.mos_b]
                ids, gd, gg, gs, gb = plan.mos_arrays.currents_and_derivatives(vd, vg, vs, vb)
                np.add.at(
                    res,
                    (self._lane, plan.mos_res_rows),
                    np.concatenate([ids, -ids], axis=1),
                )
                np.add.at(
                    jac_flat,
                    (self._lane, plan.mos_jac_idx),
                    np.concatenate([gd, gg, gs, gb, -gd, -gg, -gs, -gb], axis=1),
                )
        return res, jac

    def cap_currents(
        self,
        x_now: np.ndarray,
        x_prev: np.ndarray,
        dt: np.ndarray,
        cap_i_prev: np.ndarray,
    ) -> np.ndarray:
        """Trapezoidal capacitor currents to commit after an accepted step."""
        plan = self.plan
        geq = 2.0 * plan.cap_c / dt[:, None]
        dv_now = x_now[:, plan.cap_a] - x_now[:, plan.cap_b]
        dv_prev = x_prev[:, plan.cap_a] - x_prev[:, plan.cap_b]
        return geq * (dv_now - dv_prev) - cap_i_prev


def lane_newton(
    system: LaneSystem,
    x: np.ndarray,
    active: np.ndarray,
    options: NewtonOptions,
) -> Tuple[np.ndarray, np.ndarray]:
    """Damped Newton-Raphson on every active lane at once.

    Mirrors :meth:`repro.spice.mna.NewtonSolver.solve` per lane (residual
    norms, step limiting, convergence tests) but with a batched solve and
    per-lane masks.  ``x`` (shape ``(n_lanes, pad_size)``) is updated in
    place; lanes that fail (non-finite values, singular Jacobian, iteration
    limit) simply end up not converged.
    """
    plan = system.plan
    L, n, n_nodes = plan.n_lanes, plan.n_unknowns, plan.n_nodes
    converged = np.zeros(L, dtype=bool)
    failed = np.zeros(L, dtype=bool)
    iterations = np.zeros(L, dtype=int)
    last_residual = np.full(L, np.inf)
    identity = np.eye(n)
    for iteration in range(1, options.max_iterations + 1):
        pending = active & ~converged & ~failed
        if not pending.any():
            break
        res, jac = system.assemble(x)
        r = res[:, :n]
        j = jac[:, :n, :n]
        with np.errstate(invalid="ignore"):
            residual_norm = np.max(np.abs(r), axis=1) if n else np.zeros(L)
        bad = pending & ~np.isfinite(residual_norm)
        failed |= bad
        pending &= ~bad
        # Inactive / failed lanes get an identity system so the batched
        # factorisation cannot be poisoned by their (meaningless) rows.
        j[~pending] = identity
        rhs = np.where(pending[:, None], -r, 0.0)
        try:
            delta = np.linalg.solve(j, rhs[:, :, None])[:, :, 0]
        except np.linalg.LinAlgError:
            delta = np.zeros((L, n))
            for lane in np.flatnonzero(pending):
                try:
                    delta[lane] = np.linalg.solve(j[lane], rhs[lane])
                except np.linalg.LinAlgError:
                    failed[lane] = True
                    pending[lane] = False
        bad = pending & ~np.isfinite(delta).all(axis=1)
        failed |= bad
        pending &= ~bad
        if not pending.any():
            continue
        voltage_step = (
            np.max(np.abs(delta[:, :n_nodes]), axis=1) if n_nodes else np.zeros(L)
        )
        scale = np.ones(L)
        if options.voltage_step_limit > 0.0:
            limited = voltage_step > options.voltage_step_limit
            scale[limited] = options.voltage_step_limit / voltage_step[limited]
        step = (options.damping * scale)[:, None] * delta
        x[:, :n] += np.where(pending[:, None], step, 0.0)
        delta_norm = np.max(np.abs(delta), axis=1) if n else np.zeros(L)
        x_norm = np.max(np.abs(x[:, :n]), axis=1) if n else np.zeros(L)
        iterations[pending] = iteration
        now_converged = (
            (residual_norm < options.abs_tolerance)
            | (delta_norm < options.abs_tolerance)
            | (
                (residual_norm < options.rel_tolerance * np.maximum(last_residual, 1e-30))
                & (delta_norm < options.rel_tolerance * np.maximum(x_norm, 1.0))
            )
        )
        converged |= pending & now_converged
        last_residual = np.where(pending, residual_norm, last_residual)
    return converged, iterations


def lane_dc_solve(
    system: LaneSystem,
    options: NewtonOptions,
    x0: Optional[np.ndarray] = None,
    gmin_steps: int = 8,
    source_steps: int = 10,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-lane DC operating point with gmin and source-stepping homotopies.

    Mirrors :class:`repro.spice.dc.DCOperatingPoint`: plain solve first,
    then a gmin ladder restarted from the initial guess, then source
    stepping from zero — each stage only for the lanes that still need it.
    Returns ``(x, converged, iterations)`` with ``x`` padded to
    ``(n_lanes, pad_size)``.
    """
    plan = system.plan
    L, P = plan.n_lanes, plan.pad_size
    start = np.zeros((L, P)) if x0 is None else np.array(x0, dtype=float)
    iterations = np.zeros(L, dtype=int)
    result = np.zeros((L, P))

    system.begin_dc(gmin=options.gmin, source_scale=options.source_scale)
    x = start.copy()
    converged, its = lane_newton(system, x, np.ones(L, dtype=bool), options)
    iterations += its
    result[converged] = x[converged]
    done = converged.copy()

    pending = ~done
    if pending.any() and gmin_steps > 0:
        # gmin stepping: heavy shunt conductance relaxed decade by decade,
        # re-using each lane's previous solution as the next start.
        x = start.copy()
        ok = pending.copy()
        for gmin in np.logspace(-3, np.log10(options.gmin), gmin_steps):
            system.begin_dc(gmin=float(gmin), source_scale=options.source_scale)
            step_converged, its = lane_newton(system, x, ok, options)
            iterations += its
            ok &= step_converged
            if not ok.any():
                break
        if ok.any():
            system.begin_dc(gmin=options.gmin, source_scale=options.source_scale)
            step_converged, its = lane_newton(system, x, ok, options)
            iterations += its
            ok &= step_converged
            result[ok] = x[ok]
            done |= ok

    pending = ~done
    if pending.any() and source_steps > 0:
        # Source stepping: ramp all independent sources from zero; a lane
        # must converge at every step of the ramp.
        x = np.zeros((L, P))
        ok = pending.copy()
        for scale in np.linspace(0.1, 1.0, source_steps):
            system.begin_dc(gmin=options.gmin, source_scale=float(scale))
            step_converged, its = lane_newton(system, x, ok, options)
            iterations += its
            ok &= step_converged
            if not ok.any():
                break
        result[ok] = x[ok]
        done |= ok

    return result, done, iterations
