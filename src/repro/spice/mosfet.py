"""MOSFET device model.

A compact level-1/level-3-style MOSFET good enough for ring-oscillator and
analog-cell simulation:

* square-law strong-inversion current with channel-length modulation,
* softplus-smoothed transition into an exponential subthreshold region
  (continuous first derivatives, which keeps Newton iteration happy),
* body effect through the usual ``gamma``/``phi`` expression,
* simple velocity-saturation degradation of the overdrive,
* Meyer-style gate capacitances plus overlap and junction capacitances,
  stamped as companion models during transient analysis,
* thermal-noise current PSD used by the analytical jitter estimator.

The quantitative accuracy of a foundry BSim3v3 model is *not* claimed; what
matters for the reproduction is that performances vary smoothly and
monotonically with the designable W/L parameters and with the statistical
process parameters, which this model provides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.spice.exceptions import NetlistError
from repro.spice.netlist import Element

__all__ = ["MOSFETModel", "MOSFET", "MOSFETArrays", "NMOS_DEFAULT", "PMOS_DEFAULT"]

_BOLTZMANN = 1.380649e-23
_ELECTRON_CHARGE = 1.602176634e-19
_EPS_OX = 3.9 * 8.8541878128e-12


@dataclass(frozen=True)
class MOSFETModel:
    """Process ("model card") parameters of a MOSFET.

    All values are in SI units.  ``polarity`` is ``+1`` for NMOS and ``-1``
    for PMOS; threshold voltages are given as positive magnitudes for both
    polarities.
    """

    name: str = "nmos"
    polarity: int = 1
    vth0: float = 0.35
    #: Low-field mobility (m^2 / V s).
    u0: float = 0.030
    #: Gate-oxide thickness (m).
    tox: float = 2.8e-9
    #: Channel-length modulation (1/V).
    lambda_: float = 0.08
    #: Body-effect coefficient (V^0.5).
    gamma: float = 0.45
    #: Surface potential 2*phi_F (V).
    phi: float = 0.85
    #: Subthreshold slope factor.
    n_sub: float = 1.4
    #: Critical field for velocity saturation (V/m).
    e_crit: float = 4.0e6
    #: Lateral diffusion reducing the effective channel length (m).
    ld: float = 8.0e-9
    #: Gate-source/drain overlap capacitance per metre of width (F/m).
    cgso: float = 3.0e-10
    cgdo: float = 3.0e-10
    #: Junction capacitance per drain/source area (F/m^2) and drain extension (m).
    cj: float = 1.0e-3
    drain_extension: float = 0.24e-6
    #: Flicker-noise coefficient (dimensionless, used by the jitter model).
    kf: float = 1.0e-25
    #: Nominal temperature (K).
    temperature: float = 300.15

    @property
    def cox(self) -> float:
        """Gate-oxide capacitance per unit area (F/m^2)."""
        return _EPS_OX / self.tox

    @property
    def kp(self) -> float:
        """Process transconductance ``u0 * Cox`` (A/V^2)."""
        return self.u0 * self.cox

    @property
    def thermal_voltage(self) -> float:
        """``kT/q`` at the model temperature."""
        return _BOLTZMANN * self.temperature / _ELECTRON_CHARGE

    def with_variation(self, **overrides) -> "MOSFETModel":
        """Return a copy with some parameters replaced (used by Monte Carlo)."""
        return replace(self, **overrides)


#: Generic 0.12 um NMOS and PMOS model cards used throughout the project.
NMOS_DEFAULT = MOSFETModel(name="nmos012", polarity=1, vth0=0.33, u0=0.032, gamma=0.42)
PMOS_DEFAULT = MOSFETModel(
    name="pmos012", polarity=-1, vth0=0.36, u0=0.011, gamma=0.48, lambda_=0.10
)


@dataclass
class OperatingPoint:
    """Small-signal quantities of a MOSFET at a bias point."""

    ids: float
    vgs: float
    vds: float
    vbs: float
    gm: float
    gds: float
    gmb: float
    region: str
    vth: float
    vdsat: float


class MOSFET(Element):
    """A four-terminal MOSFET instance (drain, gate, source, bulk)."""

    def __init__(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        bulk: str,
        model: MOSFETModel,
        width: float,
        length: float,
        multiplier: int = 1,
    ) -> None:
        super().__init__(name, (drain, gate, source, bulk))
        if width <= 0.0 or length <= 0.0:
            raise NetlistError(f"MOSFET {name!r} needs positive width and length")
        if model.polarity not in (1, -1):
            raise NetlistError(f"MOSFET model {model.name!r} has invalid polarity")
        self.model = model
        self.width = float(width)
        self.length = float(length)
        self.multiplier = int(multiplier)
        if self.multiplier < 1:
            raise NetlistError(f"MOSFET {name!r} multiplier must be >= 1")

    # -- geometry -----------------------------------------------------------------

    @property
    def effective_length(self) -> float:
        """Channel length reduced by lateral diffusion on both sides."""
        return max(self.length - 2.0 * self.model.ld, 1.0e-9)

    @property
    def effective_width(self) -> float:
        """Electrical width including the multiplier."""
        return self.width * self.multiplier

    @property
    def beta(self) -> float:
        """Device transconductance factor ``kp * W / Leff``."""
        return self.model.kp * self.effective_width / self.effective_length

    # -- capacitances ---------------------------------------------------------------

    def gate_capacitances(self) -> Dict[Tuple[str, str], float]:
        """Constant (Meyer-style) capacitances between terminal pairs.

        Keys are (terminal_a, terminal_b) node-name tuples.  Using
        bias-independent values keeps the transient companion models linear
        while preserving the correct geometry scaling (C proportional to W L).
        """
        d, g, s, b = self.nodes
        model = self.model
        w = self.effective_width
        l_eff = self.effective_length
        c_channel = model.cox * w * l_eff
        caps = {
            (g, s): (2.0 / 3.0) * c_channel + model.cgso * w,
            (g, d): model.cgdo * w + (1.0 / 3.0) * c_channel * 0.25,
            (g, b): 0.1 * c_channel,
            (d, b): model.cj * w * model.drain_extension,
            (s, b): model.cj * w * model.drain_extension,
        }
        return caps

    # -- current equations -------------------------------------------------------------

    def _channel_current(self, vgs: float, vds: float, vbs: float) -> float:
        """Drain current for ``vds >= 0`` in the NMOS-normalised frame."""
        model = self.model
        # Body effect on the threshold voltage.
        phi_minus_vbs = max(model.phi - vbs, 1e-6)
        vth = model.vth0 + model.gamma * (math.sqrt(phi_minus_vbs) - math.sqrt(model.phi))
        vov = vgs - vth
        n_vt = model.n_sub * model.thermal_voltage
        # Softplus smoothing gives a continuous transition into subthreshold.
        ratio = vov / n_vt
        if ratio > 40.0:
            vov_eff = vov
        elif ratio < -40.0:
            vov_eff = n_vt * math.exp(ratio)
        else:
            vov_eff = n_vt * math.log1p(math.exp(ratio))
        # Velocity saturation reduces the usable overdrive for short channels.
        theta = 1.0 / (model.e_crit * self.effective_length)
        vov_eff = vov_eff / (1.0 + theta * vov_eff)
        vdsat = max(vov_eff, 1e-9)
        beta = self.beta
        clm = 1.0 + model.lambda_ * vds
        if vds < vdsat:
            ids = beta * (vov_eff * vds - 0.5 * vds * vds) * clm
        else:
            ids = 0.5 * beta * vov_eff * vov_eff * clm
        return max(ids, 0.0)

    def drain_current(self, vd: float, vg: float, vs: float, vb: float) -> float:
        """Current flowing into the drain terminal for arbitrary bias."""
        p = self.model.polarity
        # Normalise to an NMOS frame.
        nvd, nvg, nvs, nvb = p * vd, p * vg, p * vs, p * vb
        if nvd >= nvs:
            ids = self._channel_current(nvg - nvs, nvd - nvs, nvb - nvs)
            return p * ids
        # Source and drain swap roles when vds < 0.
        ids = self._channel_current(nvg - nvd, nvs - nvd, nvb - nvd)
        return -p * ids

    def operating_point(self, vd: float, vg: float, vs: float, vb: float) -> OperatingPoint:
        """Small-signal parameters at the given terminal voltages."""
        delta = 1e-6
        ids = self.drain_current(vd, vg, vs, vb)
        gm = (self.drain_current(vd, vg + delta, vs, vb) - ids) / delta
        gds = (self.drain_current(vd + delta, vg, vs, vb) - ids) / delta
        gmb = (self.drain_current(vd, vg, vs, vb + delta) - ids) / delta
        p = self.model.polarity
        vgs = p * (vg - vs)
        vds = p * (vd - vs)
        vbs = p * (vb - vs)
        model = self.model
        phi_minus_vbs = max(model.phi - vbs, 1e-6)
        vth = model.vth0 + model.gamma * (math.sqrt(phi_minus_vbs) - math.sqrt(model.phi))
        vdsat = max(vgs - vth, 0.0)
        if vgs <= vth:
            region = "subthreshold"
        elif vds < vdsat:
            region = "triode"
        else:
            region = "saturation"
        return OperatingPoint(
            ids=ids,
            vgs=vgs,
            vds=vds,
            vbs=vbs,
            gm=abs(gm),
            gds=abs(gds),
            gmb=abs(gmb),
            region=region,
            vth=vth,
            vdsat=vdsat,
        )

    def thermal_noise_psd(self, gm: float) -> float:
        """Drain thermal-noise current PSD ``4 k T (2/3) gm`` in A^2/Hz."""
        return 4.0 * _BOLTZMANN * self.model.temperature * (2.0 / 3.0) * max(gm, 0.0)

    # -- stamping ---------------------------------------------------------------------

    def contribute(self, ctx) -> None:
        d, g, s, b = self.nodes
        nd, ng, ns, nb = (ctx.node(n) for n in self.nodes)
        vd, vg, vs, vb = (ctx.v(n) for n in self.nodes)
        ids = self.drain_current(vd, vg, vs, vb)
        delta = 1e-6
        did_dvd = (self.drain_current(vd + delta, vg, vs, vb) - ids) / delta
        did_dvg = (self.drain_current(vd, vg + delta, vs, vb) - ids) / delta
        did_dvs = (self.drain_current(vd, vg, vs + delta, vb) - ids) / delta
        did_dvb = (self.drain_current(vd, vg, vs, vb + delta) - ids) / delta
        # KCL: the channel current enters at the drain and leaves at the source.
        ctx.add_residual(nd, ids)
        ctx.add_residual(ns, -ids)
        for column, derivative in ((nd, did_dvd), (ng, did_dvg), (ns, did_dvs), (nb, did_dvb)):
            ctx.add_jacobian(nd, column, derivative)
            ctx.add_jacobian(ns, column, -derivative)
        # A small drain-source conductance improves conditioning.
        ctx.stamp_conductance(nd, ns, 1e-12)
        if ctx.analysis == "tran" and ctx.dt > 0.0:
            self._stamp_capacitances(ctx)

    def _stamp_capacitances(self, ctx) -> None:
        state = ctx.element_state(self.name)
        for (node_a, node_b), capacitance in self.gate_capacitances().items():
            if capacitance <= 0.0:
                continue
            a = ctx.node(node_a)
            b = ctx.node(node_b)
            v_now = ctx.v(node_a) - ctx.v(node_b)
            v_prev = ctx.v_prev(node_a) - ctx.v_prev(node_b)
            key = f"i_{node_a}_{node_b}"
            if ctx.integrator == "trap":
                i_prev = state.get(key, 0.0)
                geq = 2.0 * capacitance / ctx.dt
                current = geq * (v_now - v_prev) - i_prev
            else:
                geq = capacitance / ctx.dt
                current = geq * (v_now - v_prev)
            state[f"pending_{key}"] = current
            ctx.stamp_current(a, b, current)
            ctx.stamp_conductance(a, b, geq)

    def accept_timestep(self, state: dict) -> None:
        """Commit the capacitor companion-model state after a time step."""
        pending = [key for key in state if key.startswith("pending_")]
        for key in pending:
            state[key[len("pending_"):]] = state.pop(key)

    def ac_contribute(self, ctx) -> None:
        d, g, s, b = self.nodes
        vd, vg, vs, vb = (ctx.op_voltage(n) for n in self.nodes)
        op = self.operating_point(vd, vg, vs, vb)
        p = self.model.polarity
        sign = 1.0 if p > 0 else -1.0
        # Transconductance from gate and bulk, output conductance d-s.
        ctx.stamp_vccs(d, s, g, s, sign * op.gm)
        ctx.stamp_vccs(d, s, b, s, sign * op.gmb)
        ctx.stamp_admittance(d, s, op.gds)
        omega = ctx.omega
        for (node_a, node_b), capacitance in self.gate_capacitances().items():
            ctx.stamp_admittance(node_a, node_b, 1j * omega * capacitance)


@dataclass
class MOSFETArrays:
    """Per-lane, per-device MOSFET parameters for array-wise evaluation.

    Used by the compiled stamp-plan engine (:mod:`repro.spice.plan`): one
    row of devices per lane, all lanes sharing the same topology, so that
    the whole ``(n_lanes, n_devices)`` block of drain currents and
    derivatives is evaluated with numpy ufuncs instead of per-device
    Python.  The expressions transcribe :meth:`MOSFET._channel_current` /
    :meth:`MOSFET.drain_current`; results are tolerance-equivalent (not
    bit-identical) to the scalar model because numpy's transcendentals may
    differ from libm by an ulp.
    """

    polarity: np.ndarray  # (n_devices,) -- +1 NMOS, -1 PMOS
    beta: np.ndarray  # all remaining fields have shape (n_lanes, n_devices)
    vth0: np.ndarray
    gamma: np.ndarray
    phi: np.ndarray
    sqrt_phi: np.ndarray
    n_vt: np.ndarray
    theta: np.ndarray
    lambda_: np.ndarray

    @classmethod
    def from_devices(cls, devices_by_lane: Sequence[Sequence["MOSFET"]]) -> "MOSFETArrays":
        """Stack the devices of every lane into parameter matrices.

        ``devices_by_lane[l][m]`` must be the lane-``l`` instance of the
        same topological device ``m`` (identical name, nodes and polarity
        across lanes; parameter values may differ).
        """

        def stack(getter) -> np.ndarray:
            return np.array(
                [[getter(device) for device in lane] for lane in devices_by_lane], dtype=float
            )

        phi = stack(lambda dev: dev.model.phi)
        return cls(
            polarity=np.array([device.model.polarity for device in devices_by_lane[0]]),
            beta=stack(lambda dev: dev.beta),
            vth0=stack(lambda dev: dev.model.vth0),
            gamma=stack(lambda dev: dev.model.gamma),
            phi=phi,
            sqrt_phi=np.sqrt(phi),
            n_vt=stack(lambda dev: dev.model.n_sub * dev.model.thermal_voltage),
            theta=stack(lambda dev: 1.0 / (dev.model.e_crit * dev.effective_length)),
            lambda_=stack(lambda dev: dev.model.lambda_),
        )

    def _channel_current(
        self, vgs: np.ndarray, vds: np.ndarray, vbs: np.ndarray
    ) -> np.ndarray:
        """Array transcription of :meth:`MOSFET._channel_current` (vds >= 0)."""
        phi_minus_vbs = np.maximum(self.phi - vbs, 1e-6)
        vth = self.vth0 + self.gamma * (np.sqrt(phi_minus_vbs) - self.sqrt_phi)
        vov = vgs - vth
        ratio = vov / self.n_vt
        # Clip before exponentiating so extreme lanes cannot overflow; the
        # np.where selections reproduce the scalar model's three branches.
        ratio_clipped = np.clip(ratio, -745.0, 40.0)
        exp_ratio = np.exp(ratio_clipped)
        vov_eff = np.where(
            ratio > 40.0,
            vov,
            np.where(ratio < -40.0, self.n_vt * exp_ratio, self.n_vt * np.log1p(exp_ratio)),
        )
        vov_eff = vov_eff / (1.0 + self.theta * vov_eff)
        vdsat = np.maximum(vov_eff, 1e-9)
        clm = 1.0 + self.lambda_ * vds
        triode = self.beta * (vov_eff * vds - 0.5 * vds * vds) * clm
        saturation = 0.5 * self.beta * vov_eff * vov_eff * clm
        ids = np.where(vds < vdsat, triode, saturation)
        return np.maximum(ids, 0.0)

    def drain_current(
        self, vd: np.ndarray, vg: np.ndarray, vs: np.ndarray, vb: np.ndarray
    ) -> np.ndarray:
        """Array transcription of :meth:`MOSFET.drain_current`."""
        p = self.polarity
        nvd, nvg, nvs, nvb = p * vd, p * vg, p * vs, p * vb
        forward = nvd >= nvs
        # Source and drain swap roles when vds < 0 (NMOS-normalised frame).
        vref = np.where(forward, nvs, nvd)
        ids = self._channel_current(nvg - vref, np.abs(nvd - nvs), nvb - vref)
        return np.where(forward, p * ids, -p * ids)

    def currents_and_derivatives(
        self, vd: np.ndarray, vg: np.ndarray, vs: np.ndarray, vb: np.ndarray
    ):
        """Drain currents plus the four finite-difference derivatives.

        Mirrors the ``delta = 1e-6`` finite differences of
        :meth:`MOSFET.contribute` so the compiled Jacobian matches the
        reference engine's linearisation.
        """
        delta = 1e-6
        ids = self.drain_current(vd, vg, vs, vb)
        did_dvd = (self.drain_current(vd + delta, vg, vs, vb) - ids) / delta
        did_dvg = (self.drain_current(vd, vg + delta, vs, vb) - ids) / delta
        did_dvs = (self.drain_current(vd, vg, vs + delta, vb) - ids) / delta
        did_dvb = (self.drain_current(vd, vg, vs, vb + delta) - ids) / delta
        return ids, did_dvd, did_dvg, did_dvs, did_dvb
