"""The named scenario registry shipped with the project.

Every entry is a complete, frozen :class:`~repro.experiments.config
.ScenarioConfig`; ``repro list`` prints this table and ``repro run NAME``
executes one entry.  The registry ships:

* ``table2`` -- the paper's configuration (100 x 30 circuit NSGA-II, 100
  Monte Carlo samples per Pareto point, 500-sample yield verification).
* ``fast-smoke`` -- a seconds-scale reduction used by CI and the test
  suite.
* ``vco-sweep-3`` / ``vco-sweep-5`` / ``vco-sweep-7`` / ``vco-sweep-9`` --
  the ring-topology sweep family: the same flow on 3/5/7/9-stage rings.
* ``table2-65n`` -- the paper's budgets on the ``generic065`` 65 nm-ish
  technology card (the scenario layer's technology axis).
* ``low-power`` -- the paper's flow against the tightened
  ``pll_low_power`` specification set (12 mA instead of 15 mA).
* ``pseudodiff-smoke`` / ``pseudodiff-table2`` -- the pseudo-differential
  multi-phase VCO through the identical flow (the topology seam's second
  circuit family); the smoke member also runs SPICE verification.
* ``corner-smoke`` / ``corner-pvt`` -- corner-sweep members: the circuit
  Pareto front re-evaluated across a registered corner set, condensed
  into a worst-case-corner front.

Downstream code can :func:`register` additional scenarios (e.g. in a
notebook) before invoking the runner.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.config import ScenarioConfig

__all__ = ["SCENARIOS", "register", "get_scenario", "list_scenarios", "scenario_names"]

#: All registered scenarios, keyed by name.
SCENARIOS: Dict[str, ScenarioConfig] = {}


def register(scenario: ScenarioConfig, overwrite: bool = False) -> ScenarioConfig:
    """Add a scenario to the registry and return it.

    Parameters
    ----------
    scenario:
        The scenario to register; its ``name`` becomes the registry key.
    overwrite:
        Allow replacing an existing entry of the same name (off by
        default so two built-ins cannot silently collide).
    """
    if not overwrite and scenario.name in SCENARIOS:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> ScenarioConfig:
    """Look up a registered scenario by name.

    Raises
    ------
    KeyError
        With the list of known names if ``name`` is not registered.
    """
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise KeyError(f"unknown scenario {name!r}; registered scenarios: {known}") from None


def list_scenarios() -> List[ScenarioConfig]:
    """All registered scenarios in registration order."""
    return list(SCENARIOS.values())


def scenario_names() -> List[str]:
    """Names of all registered scenarios, in registration order."""
    return list(SCENARIOS)


# -- built-in scenarios ------------------------------------------------------------------

register(
    ScenarioConfig(
        name="table2",
        description=(
            "The paper's run: 100x30 circuit NSGA-II, 100 MC samples per Pareto "
            "point, 40x15 system NSGA-II, 500-sample yield verification"
        ),
        circuit_population=100,
        circuit_generations=30,
        system_population=40,
        system_generations=15,
        mc_samples_per_point=100,
        yield_samples=500,
        max_model_points=30,
        seed=2009,
    )
)

register(
    ScenarioConfig(
        name="fast-smoke",
        description="Seconds-scale smoke run of the full flow (CI and quickstart)",
        circuit_population=16,
        circuit_generations=4,
        system_population=8,
        system_generations=2,
        mc_samples_per_point=8,
        yield_samples=20,
        max_model_points=8,
        seed=2009,
    )
)

#: The ring-topology sweep family: identical budgets, 3/5/7/9 ring stages.
for _n_stages in (3, 5, 7, 9):
    register(
        ScenarioConfig(
            name=f"vco-sweep-{_n_stages}",
            description=f"Topology sweep member: {_n_stages}-stage ring VCO, medium budget",
            n_stages=_n_stages,
            circuit_population=40,
            circuit_generations=10,
            system_population=16,
            system_generations=6,
            mc_samples_per_point=30,
            yield_samples=100,
            max_model_points=16,
            seed=2009,
        )
    )

register(
    ScenarioConfig(
        name="table2-65n",
        description=(
            "The paper's run ported to the generic065 65 nm card: same NSGA-II "
            "and Monte Carlo budgets, tighter design rules, thinner oxide"
        ),
        technology="generic065",
        circuit_population=100,
        circuit_generations=30,
        system_population=40,
        system_generations=15,
        mc_samples_per_point=100,
        yield_samples=500,
        max_model_points=30,
        seed=2009,
    )
)

register(
    ScenarioConfig(
        name="pseudodiff-smoke",
        description=(
            "Seconds-scale smoke of the pseudo-differential multi-phase VCO "
            "through all four stages, including SPICE verification"
        ),
        topology="pseudodiff-vco",
        n_stages=3,
        circuit_population=16,
        circuit_generations=4,
        system_population=8,
        system_generations=2,
        mc_samples_per_point=8,
        yield_samples=20,
        max_model_points=8,
        run_verification=True,
        seed=2009,
    )
)

register(
    ScenarioConfig(
        name="pseudodiff-table2",
        description=(
            "The paper's budgets on the pseudo-differential multi-phase VCO: "
            "the methodology-generalisation counterpart of table2"
        ),
        topology="pseudodiff-vco",
        circuit_population=100,
        circuit_generations=30,
        system_population=40,
        system_generations=15,
        mc_samples_per_point=100,
        yield_samples=500,
        max_model_points=30,
        seed=2009,
    )
)

register(
    ScenarioConfig(
        name="corner-smoke",
        description=(
            "Seconds-scale smoke of the corner sweep: the fast-smoke front "
            "re-evaluated across the standard tt/ss/ff/sf/fs corners"
        ),
        corners="standard",
        circuit_population=16,
        circuit_generations=4,
        system_population=8,
        system_generations=2,
        mc_samples_per_point=8,
        yield_samples=20,
        max_model_points=8,
        seed=2009,
    )
)

register(
    ScenarioConfig(
        name="corner-pvt",
        description=(
            "Medium-budget circuit stage swept across the pvt corner set "
            "(process corners plus supply/temperature excursions)"
        ),
        corners="pvt",
        circuit_population=40,
        circuit_generations=10,
        system_population=16,
        system_generations=6,
        mc_samples_per_point=30,
        yield_samples=100,
        max_model_points=16,
        seed=2009,
    )
)

register(
    ScenarioConfig(
        name="low-power",
        description=(
            "Paper flow against the pll_low_power specification set "
            "(12 mA current budget, relaxed 1.5 us lock window)"
        ),
        specifications="pll_low_power",
        circuit_population=60,
        circuit_generations=16,
        system_population=24,
        system_generations=10,
        mc_samples_per_point=40,
        yield_samples=200,
        max_model_points=18,
        seed=2009,
    )
)
