"""The resumable experiment runner.

:class:`ExperimentRunner` executes a
:class:`~repro.experiments.config.ScenarioConfig` through the hierarchical
flow with per-stage checkpointing: after each stage the artefact is
pickled into the content-addressed :class:`~repro.experiments.cache
.ArtefactCache` under the scenario's config hash, and a rerun with the
same hash *loads* completed stages instead of recomputing them.

Because every stage is a deterministic function of (scenario, upstream
artefacts) and pickling round-trips floats bit-exactly, a resumed run is
bit-identical to a cold run of the same scenario -- the test suite
enforces this, and it holds across evaluation backends (the backends are
bit-identical by the project's batch-evaluation invariant, which is why
the backend is not part of the config hash).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.cancel import CancelToken
from repro.circuits.evaluators import VcoEvaluator
from repro.obs import trace as obs_trace
from repro.core.flow import (
    FlowReport,
    HierarchicalFlow,
    StageHook,
    summarise_generation,
    summarise_yield_partial,
)
from repro.experiments.cache import ArtefactCache, CacheEntry
from repro.experiments.config import ScenarioConfig

__all__ = ["StageOutcome", "ExperimentResult", "ExperimentRunner", "DEFAULT_YIELD_BATCH"]

#: Monte Carlo samples per mid-stage yield checkpoint (see
#: :meth:`~repro.core.yield_analysis.YieldAnalysis.run`; the batch size
#: never changes the result, only how often progress is persisted).
DEFAULT_YIELD_BATCH = 64

#: Stage sources reported by :class:`StageOutcome`.
COMPUTED, CACHED, SKIPPED = "computed", "cached", "skipped"


@dataclass(frozen=True)
class StageOutcome:
    """How one stage of a run was satisfied."""

    #: Stage name (``circuit`` / ``system`` / ``yield`` / ``verification``).
    stage: str
    #: ``"computed"``, ``"cached"`` or ``"skipped"``.
    source: str
    #: Wall-clock seconds spent (loading or computing).
    seconds: float = 0.0


@dataclass
class ExperimentResult:
    """Everything one :meth:`ExperimentRunner.run` call produced."""

    scenario: ScenarioConfig
    config_hash: str
    report: FlowReport
    outcomes: List[StageOutcome] = field(default_factory=list)
    cache_dir: Optional[Path] = None
    elapsed: float = 0.0

    @property
    def stage_sources(self) -> Dict[str, str]:
        """Mapping of stage name to ``computed`` / ``cached`` / ``skipped``."""
        return {outcome.stage: outcome.source for outcome in self.outcomes}

    @property
    def resumed(self) -> bool:
        """Whether at least one stage was satisfied from the cache."""
        return any(outcome.source == CACHED for outcome in self.outcomes)

    def summary(self) -> Dict[str, Any]:
        """Headline numbers plus run metadata (JSON-compatible)."""
        summary: Dict[str, Any] = {
            "scenario": self.scenario.name,
            "config_hash": self.config_hash,
            "elapsed_seconds": self.elapsed,
            "stages": self.stage_sources,
        }
        summary.update(self.report.summary())
        return summary


class ExperimentRunner:
    """Run scenarios through the flow with content-addressed resume.

    Parameters
    ----------
    scenario:
        The scenario to execute.
    cache_dir:
        Cache root (defaults to ``$REPRO_CACHE_DIR`` or ``.repro-cache``).
    force:
        Recompute every stage even when a checkpoint exists (checkpoints
        are overwritten with the freshly computed artefacts).
    evaluator:
        Optional evaluator override forwarded to
        :meth:`HierarchicalFlow.from_scenario` (e.g. the SPICE engine for a
        ground-truth run).  Runs with a custom evaluator bypass the cache:
        the config hash only describes the scenario, not the evaluator.
    yield_batch_size:
        Monte Carlo samples per mid-stage yield checkpoint.  A yield stage
        interrupted between batches resumes from the persisted partial
        instead of restarting; the batch size never changes the result.
        ``None`` disables mid-stage checkpointing (single batch).
    circuit_checkpoint:
        Persist the circuit stage's NSGA-II state per generation
        (``circuit.partial.pkl``), so an interrupted or cancelled circuit
        stage resumes at generation granularity.  Checkpointing never
        changes the result (the overhead benchmark keeps it < 5 %);
        ``False`` disables it.
    artifacts:
        Optional :class:`~repro.experiments.artifacts.ArtifactStore`
        overriding the local disk cache -- the distributed seam.  A
        remote worker passes an
        :class:`~repro.experiments.artifacts.HttpArtifactStore` here so
        stage checkpoints are read through from (and published to) the
        coordinator; the checkpoint protocol is identical, so the run
        stays bit-identical to a local one.  When given, ``cache_dir``
        is ignored.
    """

    def __init__(
        self,
        scenario: ScenarioConfig,
        cache_dir: Optional[Path] = None,
        force: bool = False,
        evaluator: Optional[VcoEvaluator] = None,
        yield_batch_size: Optional[int] = DEFAULT_YIELD_BATCH,
        circuit_checkpoint: bool = True,
        artifacts: Optional[Any] = None,
    ) -> None:
        self.scenario = scenario
        self.cache = artifacts if artifacts is not None else ArtefactCache(cache_dir)
        self.force = force
        self.evaluator = evaluator
        self.yield_batch_size = yield_batch_size
        self.circuit_checkpoint = circuit_checkpoint
        #: Custom evaluators produce different numbers than the scenario
        #: hash promises, so their artefacts must never enter the cache.
        self._use_cache = evaluator is None

    # -- public API ----------------------------------------------------------------------

    def run(
        self,
        output_directory: Optional[str] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        stage_hook: Optional[StageHook] = None,
        cancel: Optional[CancelToken] = None,
        progress_hook: Optional[Callable[[str, Dict[str, Any]], None]] = None,
    ) -> ExperimentResult:
        """Execute (or resume) the scenario and return all artefacts.

        Parameters
        ----------
        output_directory:
            When given, the combined model's ``.tbl`` files and generated
            Verilog-A are exported there (like ``HierarchicalFlow.run``).
        progress:
            Optional ``progress(done, total)`` callback forwarded to the
            circuit stage's Monte Carlo loop.
        stage_hook:
            Optional ``hook(stage_name, artefact)`` invoked right after
            each stage is satisfied -- computed *or* loaded from the cache
            (skipped stages fire no hook).  The same seam as
            :meth:`HierarchicalFlow.run`; the experiment service's workers
            use it to record per-stage progress events.
        cancel:
            Optional :class:`~repro.cancel.CancelToken` observed at every
            checkpoint boundary (stage transitions, NSGA-II generations,
            yield Monte Carlo batches).  A cancelled run raises
            :class:`~repro.cancel.JobCancelled` right after the current
            partial was persisted, so rerunning the same scenario resumes
            from it bit-identically.
        progress_hook:
            Optional ``hook(stage_name, payload)`` invoked at every
            *mid-stage* checkpoint: once per NSGA-II generation of the
            circuit stage (payload from
            :func:`~repro.core.flow.summarise_generation`, with the
            current Pareto front) and once per yield Monte Carlo batch
            (:func:`~repro.core.flow.summarise_yield_partial`, with the
            running yield estimate).  The service workers feed these to
            the job store's event log for live SSE streaming.  Fires only
            when the corresponding checkpointing is active (a cache entry
            exists), and never for stages satisfied from the cache; hook
            failures are swallowed -- progress must never break a run.

        Returns
        -------
        ExperimentResult
            The assembled :class:`~repro.core.flow.FlowReport` plus, for
            every stage, whether it was computed, loaded from cache or
            skipped.
        """
        scenario = self.scenario
        entry = self.cache.entry_for(scenario) if self._use_cache else None
        # Tracing wraps the run but never feeds back into it: spans only
        # read clocks, so artefact bytes are identical with or without
        # observability (asserted by tests and the overhead benchmark).
        # When a worker already activated the job's trace, start_trace
        # yields None and our spans join the outer trace (which the
        # owner persists); otherwise this runner owns trace + persist.
        with obs_trace.start_trace(scenario.config_hash()) as trace:
            with obs_trace.span(
                "runner.run", scenario=scenario.name, config_hash=scenario.config_hash()
            ):
                result = self._execute(
                    entry,
                    output_directory=output_directory,
                    progress=progress,
                    stage_hook=stage_hook,
                    cancel=cancel,
                    progress_hook=progress_hook,
                )
            if trace is not None and entry is not None:
                entry.write_trace(trace.spans)
        return result

    def _execute(
        self,
        entry: Optional[CacheEntry],
        output_directory: Optional[str],
        progress: Optional[Callable[[int, int], None]],
        stage_hook: Optional[StageHook],
        cancel: Optional[CancelToken],
        progress_hook: Optional[Callable[[str, Dict[str, Any]], None]],
    ) -> ExperimentResult:
        started = time.perf_counter()
        scenario = self.scenario
        flow = HierarchicalFlow.from_scenario(scenario, evaluator=self.evaluator)
        if entry is not None:
            entry.write_scenario(scenario)
        outcomes: List[StageOutcome] = []

        def checkpoint(stage: str, artefact: object) -> None:
            if stage_hook is not None:
                stage_hook(stage, artefact)

        def observe_cancel() -> None:
            if cancel is not None:
                cancel.raise_if_cancelled()

        observe_cancel()
        circuit_partial = (
            _StagePartial(entry, "circuit")
            if entry is not None and self.circuit_checkpoint
            else None
        )
        if circuit_partial is not None and progress_hook is not None:
            circuit_partial = _ObservedPartial(
                circuit_partial,
                lambda state: progress_hook("circuit", summarise_generation(state)),
            )
        if self.force and entry is not None:
            # --force promises a full recompute: a mid-stage partial left
            # by an interrupted run must not be resumed from.
            entry.clear_partial("circuit")
        circuit, outcome = self._stage(
            entry,
            "circuit",
            lambda: flow.circuit_stage(
                progress=progress, checkpoint=circuit_partial, cancel=cancel
            ),
        )
        if entry is not None:
            # The stage artefact now owns the work: the per-generation
            # NSGA-II partial (kept through the model build so a crash
            # there never loses the optimisation) is obsolete.
            entry.clear_partial("circuit")
        outcomes.append(outcome)
        checkpoint("circuit", circuit)
        observe_cancel()

        corner_report = None
        if scenario.corners:
            corner_report, outcome = self._stage(
                entry,
                "corners",
                lambda: flow.corner_stage(circuit, scenario.corners, cancel=cancel),
            )
            checkpoint("corners", corner_report)
        else:
            outcome = StageOutcome("corners", SKIPPED)
        outcomes.append(outcome)
        observe_cancel()

        system, outcome = self._stage(
            entry, "system", lambda: flow.system_stage(circuit.model, cancel=cancel)
        )
        outcomes.append(outcome)
        checkpoint("system", system)
        observe_cancel()

        yield_report = None
        if scenario.run_yield and system.selected is not None:
            yield_partial = _StagePartial(entry, "yield") if entry is not None else None
            if yield_partial is not None and progress_hook is not None:
                yield_partial = _ObservedPartial(
                    yield_partial,
                    lambda state: progress_hook(
                        "yield",
                        summarise_yield_partial(
                            state, scenario.yield_samples, flow.specifications
                        ),
                    ),
                )
            if self.force and entry is not None:
                entry.clear_partial("yield")
            yield_report, outcome = self._stage(
                entry,
                "yield",
                lambda: flow.verify_yield(
                    circuit.model,
                    system.selected_values,
                    checkpoint=yield_partial,
                    batch_size=self.yield_batch_size,
                    cancel=cancel,
                ),
            )
            checkpoint("yield", yield_report)
        else:
            outcome = StageOutcome("yield", SKIPPED)
        outcomes.append(outcome)
        observe_cancel()

        verification = None
        if scenario.run_verification:
            verification, outcome = self._stage(
                entry, "verification", lambda: flow.verification_stage(circuit.model)
            )
            checkpoint("verification", verification)
        else:
            outcome = StageOutcome("verification", SKIPPED)
        outcomes.append(outcome)

        model_directory = None
        generated: List[str] = []
        if output_directory is not None:
            model_directory, generated = flow.export_model(circuit.model, output_directory)

        report = FlowReport(
            circuit_stage=circuit,
            system_stage=system,
            yield_report=yield_report,
            verification=verification,
            model_directory=model_directory,
            generated_files=generated,
            corner_report=corner_report,
        )
        result = ExperimentResult(
            scenario=scenario,
            config_hash=scenario.config_hash(),
            report=report,
            outcomes=outcomes,
            cache_dir=entry.directory if entry is not None else None,
            elapsed=time.perf_counter() - started,
        )
        if entry is not None:
            entry.write_report_summary(result.summary())
        return result

    # -- internals -----------------------------------------------------------------------

    def _stage(self, entry: Optional[CacheEntry], stage: str, compute: Callable[[], Any]):
        """Satisfy one stage from the cache or by computing it."""
        with obs_trace.span(f"stage.{stage}") as attrs:
            started = time.perf_counter()
            if entry is not None and not self.force and entry.has(stage):
                artefact = entry.load(stage)
                if attrs is not None:
                    attrs["source"] = CACHED
                return artefact, StageOutcome(
                    stage, CACHED, time.perf_counter() - started
                )
            artefact = compute()
            if entry is not None:
                with obs_trace.span("checkpoint.store", stage=stage, kind="stage"):
                    entry.store(stage, artefact)
            if attrs is not None:
                attrs["source"] = COMPUTED
            return artefact, StageOutcome(stage, COMPUTED, time.perf_counter() - started)


class _StagePartial:
    """Cache-entry-backed mid-stage checkpoint handed to stage computations.

    Adapts one stage's partial-checkpoint slot of a
    :class:`~repro.experiments.cache.CacheEntry` to the duck-typed
    ``load() / store(state) / clear()`` interface
    :meth:`~repro.core.yield_analysis.YieldAnalysis.run` expects.
    """

    def __init__(self, entry: CacheEntry, stage: str) -> None:
        self.entry = entry
        self.stage = stage

    def load(self) -> Optional[Any]:
        return self.entry.load_partial(self.stage)

    def store(self, state: Any) -> None:
        with obs_trace.span("checkpoint.store", stage=self.stage, kind="partial"):
            self.entry.store_partial(self.stage, state)

    def clear(self) -> None:
        self.entry.clear_partial(self.stage)


class _ObservedPartial:
    """A checkpoint wrapper that reports every persisted state.

    Wraps a :class:`_StagePartial` and calls ``observe(state)`` after each
    successful ``store`` -- the seam that turns mid-stage checkpoints
    (NSGA-II generations, yield Monte Carlo batches) into live progress
    events.  The observer runs *after* the persist (the checkpoint is the
    source of truth) and its failures are swallowed: progress reporting
    must never corrupt or abort a run.
    """

    def __init__(self, partial: _StagePartial, observe: Callable[[Any], None]) -> None:
        self._partial = partial
        self._observe = observe

    def load(self) -> Optional[Any]:
        return self._partial.load()

    def store(self, state: Any) -> None:
        self._partial.store(state)
        try:
            self._observe(state)
        except Exception:  # noqa: BLE001 - progress must never break a run
            pass

    def clear(self) -> None:
        self._partial.clear()


