"""The ``repro`` command-line interface.

Local subcommands run the hierarchical flow in-process::

    repro list                         # registered scenarios
    repro run table2                   # run (or resume) a scenario
    repro run table2 --evaluation vectorised --force
    repro report table2                # summarise cached artefacts

``run`` is resumable: artefacts are checkpointed per stage under the
scenario's config hash (see :mod:`repro.experiments.cache`), so a second
invocation of the same scenario loads the cached stages and is
bit-identical to the cold run.  ``--evaluation`` / ``--n-workers`` /
``--spice-engine`` / ``--seed`` override the registered scenario; only
``--seed`` changes the config hash (backends are bit-identical, so they
share cache entries).

Service subcommands talk to the experiment service
(:mod:`repro.service`), which shares work between many clients::

    repro serve --workers 4 --port 8321    # job store + worker pool + HTTP API
    repro serve --min-workers 1 --max-workers 8   # autoscale on queue depth
    repro submit fast-smoke --wait         # POST /v1/jobs, poll, print the report
    repro submit-sweep 'vco-sweep-*' --technology generic012,generic065
                                           # glob x axis product, batched submits
    repro portfolio portfolio-table2 --submit     # fan one portfolio into child jobs
    repro portfolio portfolio-table2 --report     # merged cross-technology Pareto view
    repro status <job-id-or-scenario>      # GET /v1/jobs/<id> (+ stage events)
    repro cancel <job-id-or-scenario>      # DELETE /v1/jobs/<id>
    repro jobs --state queued              # GET /v1/jobs (paginated underneath)
    repro events <job-id-or-scenario>      # live SSE stream of progress events
    repro trace <job-id-or-scenario>       # per-job timing profile (span tree)

``serve`` boots the asyncio front end (keep-alive, SSE streaming, the
dashboard at ``/``); the dashboard is plain static files, so a browser
pointed at the service URL needs no extra setup.

The module doubles as ``python -m repro.experiments.cli`` for environments
where the console script is not installed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.experiments.cache import ArtefactCache, STAGES, default_cache_dir
from repro.experiments.config import ScenarioConfig
from repro.experiments.registry import (
    SCENARIOS,
    get_scenario,
    list_scenarios,
    scenario_names,
)
from repro.experiments.report import report_payload
from repro.experiments.runner import ExperimentResult, ExperimentRunner

__all__ = ["main", "build_parser"]

#: Default URL the client subcommands talk to (matches ``repro serve``).
DEFAULT_URL = "http://127.0.0.1:8321"


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scenario registry and resumable runner for the hierarchical PLL flow.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered scenarios")

    run = subparsers.add_parser("run", help="run (or resume) a scenario")
    run.add_argument("scenario", help="registered scenario name (see 'repro list')")
    run.add_argument(
        "--evaluation",
        choices=("serial", "vectorised", "vectorized", "process"),
        default=None,
        help="batch-evaluation backend override (does not change the cache key)",
    )
    run.add_argument(
        "--n-workers", type=int, default=None, help="worker count for the process backend"
    )
    run.add_argument(
        "--spice-engine",
        choices=("reference", "compiled", "lanes"),
        default=None,
        help="transistor-level verification backend (does not change the cache key)",
    )
    run.add_argument(
        "--seed", type=int, default=None, help="seed override (changes the cache key)"
    )
    run.add_argument("--cache-dir", default=None, help="cache root (default: .repro-cache)")
    run.add_argument(
        "--force", action="store_true", help="recompute every stage, overwriting checkpoints"
    )
    run.add_argument(
        "--output-dir",
        default=None,
        help="also export the combined model (.tbl files and Verilog-A) here",
    )
    run.add_argument(
        "--json", action="store_true", help="print the run summary as JSON instead of text"
    )

    report = subparsers.add_parser("report", help="summarise a scenario's cached artefacts")
    report.add_argument("scenario", help="registered scenario name")
    report.add_argument("--cache-dir", default=None, help="cache root (default: .repro-cache)")
    report.add_argument(
        "--seed", type=int, default=None, help="seed override used when the run was cached"
    )
    report.add_argument("--max-rows", type=int, default=10, help="Table-2 rows to print")
    report.add_argument(
        "--json", action="store_true", help="print the stored summary as JSON instead of text"
    )
    report.add_argument(
        "--timing",
        action="store_true",
        help="also print per-stage timings from the recorded trace (if any)",
    )

    serve = subparsers.add_parser(
        "serve", help="run the experiment service (job store + worker pool + HTTP API)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8321, help="bind port (0 picks a free one)")
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "fixed worker process count; 0 runs a coordinator-only service"
            " for remote workers (ignored when --min/--max-workers is given)"
        ),
    )
    serve.add_argument(
        "--min-workers",
        type=int,
        default=None,
        help="autoscale: minimum worker processes (enables queue-depth autoscaling)",
    )
    serve.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help=(
            "autoscale: maximum worker processes (enables queue-depth autoscaling;"
            " default when only --min-workers is given: max(min-workers, 4))"
        ),
    )
    serve.add_argument(
        "--cache-dir", default=None, help="artefact cache root (default: .repro-cache)"
    )
    serve.add_argument(
        "--db", default=None, help="job database path (default: <cache-dir>/service.db)"
    )
    serve.add_argument(
        "--lease-ttl",
        type=float,
        default=60.0,
        help="seconds before an unheartbeated job is reclaimed",
    )
    serve.add_argument(
        "--log-level",
        default="info",
        choices=("debug", "info", "warning", "error"),
        help="stdlib logging level of the repro.service.* loggers",
    )

    worker = subparsers.add_parser(
        "worker", help="run a remote worker against a coordinator's /v1 API"
    )
    worker.add_argument(
        "--coordinator",
        required=True,
        metavar="URL",
        help="coordinator base URL, e.g. http://host:8321",
    )
    worker.add_argument(
        "--cache-dir",
        default=None,
        help="local read-through artefact cache root (default: .repro-cache)",
    )
    worker.add_argument(
        "--shard-index", type=int, default=0, help="this worker's shard of the hash space"
    )
    worker.add_argument(
        "--shard-count", type=int, default=1, help="total shards across the worker fleet"
    )
    worker.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="seconds between claim attempts when the queue is empty",
    )
    worker.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="exit after executing this many jobs (default: run until terminated)",
    )
    worker.add_argument(
        "--name", default=None, help="worker name reported to the coordinator"
    )
    worker.add_argument(
        "--log-level",
        default="info",
        choices=("debug", "info", "warning", "error"),
        help="stdlib logging level of the repro.service.* loggers",
    )

    submit = subparsers.add_parser("submit", help="submit a scenario to a running service")
    submit.add_argument("scenario", help="registered scenario name (see 'repro list')")
    submit.add_argument("--url", default=DEFAULT_URL, help="service URL")
    submit.add_argument(
        "--evaluation",
        choices=("serial", "vectorised", "vectorized", "process"),
        default=None,
        help="batch-evaluation backend override (does not change the job id)",
    )
    submit.add_argument(
        "--n-workers", type=int, default=None, help="worker count for the process backend"
    )
    submit.add_argument(
        "--spice-engine",
        choices=("reference", "compiled", "lanes"),
        default=None,
        help="transistor-level verification backend (does not change the job id)",
    )
    submit.add_argument(
        "--seed", type=int, default=None, help="seed override (changes the job id)"
    )
    submit.add_argument(
        "--wait", action="store_true", help="poll until the job finishes, then print it"
    )
    submit.add_argument(
        "--timeout", type=float, default=600.0, help="--wait timeout in seconds"
    )
    submit.add_argument("--json", action="store_true", help="print the job as JSON")

    status = subparsers.add_parser("status", help="show one job of a running service")
    status.add_argument(
        "job", help="job id (config hash) or registered scenario name to resolve"
    )
    status.add_argument("--url", default=DEFAULT_URL, help="service URL")
    status.add_argument(
        "--seed", type=int, default=None, help="seed override used when submitting"
    )
    status.add_argument("--json", action="store_true", help="print the job as JSON")

    cancel = subparsers.add_parser("cancel", help="cancel a job of a running service")
    cancel.add_argument(
        "job", help="job id (config hash) or registered scenario name to resolve"
    )
    cancel.add_argument("--url", default=DEFAULT_URL, help="service URL")
    cancel.add_argument(
        "--seed", type=int, default=None, help="seed override used when submitting"
    )
    cancel.add_argument("--json", action="store_true", help="print the job as JSON")

    jobs = subparsers.add_parser("jobs", help="list the jobs of a running service")
    jobs.add_argument("--url", default=DEFAULT_URL, help="service URL")
    jobs.add_argument(
        "--state",
        default=None,
        choices=("queued", "leased", "running", "done", "failed", "cancelled"),
        help="only jobs in this state",
    )
    jobs.add_argument("--json", action="store_true", help="print the job list as JSON")

    events = subparsers.add_parser(
        "events", help="stream a job's progress events live (SSE)"
    )
    events.add_argument(
        "job", help="job id (config hash) or registered scenario name to resolve"
    )
    events.add_argument("--url", default=DEFAULT_URL, help="service URL")
    events.add_argument(
        "--seed", type=int, default=None, help="seed override used when submitting"
    )
    events.add_argument(
        "--after", type=int, default=None, help="resume after this event sequence number"
    )
    events.add_argument(
        "--json", action="store_true", help="print each event as one JSON line"
    )

    trace = subparsers.add_parser(
        "trace", help="show a job's timing profile as an indented span tree"
    )
    trace.add_argument(
        "job", help="job id (config hash) or registered scenario name to resolve"
    )
    trace.add_argument("--url", default=DEFAULT_URL, help="service URL")
    trace.add_argument(
        "--seed", type=int, default=None, help="seed override used when submitting"
    )
    trace.add_argument(
        "--local",
        action="store_true",
        help="read trace.jsonl from the local cache instead of the service",
    )
    trace.add_argument(
        "--cache-dir", default=None, help="cache root for --local (default: .repro-cache)"
    )
    trace.add_argument(
        "--json", action="store_true", help="print the span records as JSON"
    )

    sweep = subparsers.add_parser(
        "submit-sweep",
        help="expand a scenario glob (x technology axis) into batched submissions",
    )
    sweep.add_argument(
        "pattern", help="glob over registered scenario names, e.g. 'vco-sweep-*'"
    )
    sweep.add_argument(
        "--technology",
        default=None,
        metavar="LIST",
        help=(
            "comma-separated technology axis fanned across every matched "
            "scenario, e.g. generic012,generic065 (default: each scenario's own)"
        ),
    )
    sweep.add_argument("--url", default=DEFAULT_URL, help="service URL")
    sweep.add_argument(
        "--seed", type=int, default=None, help="seed override (changes every job id)"
    )
    sweep.add_argument(
        "--dry-run",
        action="store_true",
        help="print the expansion without submitting anything",
    )
    sweep.add_argument(
        "--json", action="store_true", help="print the submitted jobs as JSON"
    )

    portfolio = subparsers.add_parser(
        "portfolio",
        help="cross-technology portfolios: list, run locally, submit, merged report",
    )
    portfolio.add_argument(
        "name",
        nargs="?",
        default=None,
        help="registered portfolio name (omit to list the registry)",
    )
    portfolio.add_argument(
        "--run",
        action="store_true",
        help="run every child scenario locally, then print the merged report",
    )
    portfolio.add_argument(
        "--submit",
        action="store_true",
        help="fan the children out as jobs of a running service",
    )
    portfolio.add_argument(
        "--report",
        action="store_true",
        help="print the merged cross-technology report",
    )
    portfolio.add_argument(
        "--local",
        action="store_true",
        help="with --report: read the local cache instead of asking the service",
    )
    portfolio.add_argument(
        "--url", default=DEFAULT_URL, help="service URL for --submit / --report"
    )
    portfolio.add_argument(
        "--cache-dir",
        default=None,
        help="cache root for --run / --report --local (default: .repro-cache)",
    )
    portfolio.add_argument(
        "--force", action="store_true", help="with --run: recompute every stage"
    )
    portfolio.add_argument("--json", action="store_true", help="JSON output")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "jobs":
        return _cmd_jobs(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "cancel":
        return _cmd_cancel(args)
    if args.command == "events":
        return _cmd_events(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "submit-sweep":
        return _cmd_submit_sweep(args)
    if args.command == "portfolio":
        return _cmd_portfolio(args)
    # Resolve the scenario up front: an unknown name or an invalid override
    # value is a usage error (one line on stderr, exit 2); anything raised
    # later is a genuine failure and propagates with its traceback.
    try:
        scenario = _scenario_with_overrides(args)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: invalid override: {error}", file=sys.stderr)
        return 2
    if args.command == "run":
        return _cmd_run(args, scenario)
    if args.command == "report":
        return _cmd_report(args, scenario)
    if args.command == "submit":
        return _cmd_submit(args, scenario)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


# -- subcommands -------------------------------------------------------------------------


def _cmd_list() -> int:
    # One row per registered scenario with its full metadata -- topology,
    # technology card, corner set and budgets -- not just the bare name,
    # so `repro list` answers "what would this run?" without opening the
    # registry source.
    scenarios = list_scenarios()
    print(
        f"{'name':<18} {'topology':<16} {'tech':<10} {'stages':>6} "
        f"{'circuit GA':>12} {'system GA':>11} {'MC/pt':>5} {'yield':>5} "
        f"{'corners':<8} {'specs':<14} description"
    )
    for scenario in scenarios:
        print(
            f"{scenario.name:<18} {scenario.topology:<16} {scenario.technology:<10} "
            f"{scenario.n_stages:>6} "
            f"{scenario.circuit_population:>5}x{scenario.circuit_generations:<3} "
            f"{scenario.system_population:>7}x{scenario.system_generations:<3} "
            f"{scenario.mc_samples_per_point:>5} {scenario.yield_samples:>5} "
            f"{scenario.corners or '-':<8} {scenario.specifications:<14} "
            f"{scenario.description}"
        )
    return 0


def _overrides_from_args(args: argparse.Namespace) -> dict:
    """The scenario overrides carried by the common CLI flags.

    One definition for every subcommand that accepts them: ``run`` and
    ``report`` apply them locally, ``submit`` forwards them to the server.
    """
    overrides = {}
    if getattr(args, "evaluation", None) is not None:
        overrides["evaluation"] = args.evaluation
    if getattr(args, "n_workers", None) is not None:
        overrides["n_workers"] = args.n_workers
    if getattr(args, "spice_engine", None) is not None:
        overrides["spice_engine"] = args.spice_engine
    if getattr(args, "seed", None) is not None:
        overrides["seed"] = args.seed
    return overrides


def _scenario_with_overrides(args: argparse.Namespace) -> ScenarioConfig:
    scenario = get_scenario(args.scenario)
    overrides = _overrides_from_args(args)
    return scenario.with_overrides(**overrides) if overrides else scenario


def _cmd_run(args: argparse.Namespace, scenario: ScenarioConfig) -> int:
    runner = ExperimentRunner(scenario, cache_dir=args.cache_dir, force=args.force)
    result = runner.run(output_directory=args.output_dir)
    if args.json:
        print(json.dumps(result.summary(), indent=2, sort_keys=True))
        return 0
    _print_run(result)
    return 0


def _print_run(result: ExperimentResult) -> None:
    print(f"scenario     : {result.scenario.name}")
    print(f"config hash  : {result.config_hash}")
    if result.cache_dir is not None:
        print(f"cache entry  : {result.cache_dir}")
    for outcome in result.outcomes:
        print(f"  stage {outcome.stage:<13}: {outcome.source:<9} ({outcome.seconds:.3f} s)")
    print(f"elapsed      : {result.elapsed:.3f} s")
    print("--- flow summary ---")
    for key, value in result.report.summary().items():
        print(f"  {key:28s}: {value:.6g}")
    if result.report.system_stage.selected is not None:
        print("--- selected design solution ---")
        for name, value in result.report.selected_values.items():
            print(f"  {name:8s}: {value:.6g}")


def _cmd_report(args: argparse.Namespace, scenario: ScenarioConfig) -> int:
    # The payload builder is shared with the service's GET /jobs/<id>/report,
    # so both front ends report the identical JSON for one configuration.
    payload = report_payload(scenario, args.cache_dir)
    if payload is None:
        print(
            f"error: no cached artefacts for scenario {scenario.name!r} "
            f"(hash {scenario.config_hash()}) under {ArtefactCache(args.cache_dir).root}; "
            f"run 'repro run {scenario.name}' first",
            file=sys.stderr,
        )
        return 1
    present = payload["stages_present"]
    summary = payload["summary"]
    entry = ArtefactCache(args.cache_dir).entry_for(scenario)
    if args.json:
        if args.timing:
            payload = dict(payload, trace_spans=entry.read_trace() or [])
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"scenario     : {scenario.name}")
    print(f"config hash  : {scenario.config_hash()}")
    print(f"cache entry  : {entry.directory}")
    print(f"stages cached: {', '.join(present)} (of {', '.join(STAGES)})")
    if summary:
        print("--- last recorded summary ---")
        for key, value in sorted(summary.items()):
            print(f"  {key:28s}: {value}")
    if entry.has("system"):
        system = entry.load("system")
        rows = system.table2_records(max_rows=args.max_rows)
        if rows:
            print(f"--- Table-2 style rows (first {len(rows)}) ---")
            columns = list(rows[0])
            print("  " + " ".join(f"{column:>16s}" for column in columns))
            for row in rows:
                print("  " + " ".join(f"{row[column]:16.4g}" for column in columns))
    if args.timing:
        _print_stage_timings(entry.read_trace() or [])
    return 0


# -- service subcommands -----------------------------------------------------------------


def _configure_logging(level_name: str) -> None:
    """Wire the ``repro.service.*`` loggers to stderr at the given level."""
    import logging

    logging.basicConfig(
        level=getattr(logging, level_name.upper(), logging.INFO),
        format="%(asctime)s %(levelname)s %(name)s: %(message)s",
        stream=sys.stderr,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    # Service imports stay local so plain `repro run` never pays for them.
    import signal

    from repro.service.api import make_async_server
    from repro.service.store import JobStore
    from repro.service.worker import Autoscaler, WorkerPool

    _configure_logging(args.log_level)
    cache_dir = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    db_path = Path(args.db) if args.db else cache_dir / "service.db"
    store = JobStore(db_path, lease_ttl=args.lease_ttl)
    # The asyncio front end: one event loop serves every connection
    # (keep-alive, SSE streams, the dashboard) and bridges store calls to
    # a thread pool, so the API stays responsive under hundreds of clients.
    server = make_async_server(args.host, args.port, store, cache_dir)
    try:
        host, port = server.start()
    except OSError as error:
        print(f"error: cannot bind {args.host}:{args.port}: {error}", file=sys.stderr)
        return 2
    autoscale = args.min_workers is not None or args.max_workers is not None
    try:
        if autoscale:
            # --workers is genuinely ignored here (as its help promises):
            # the autoscale bounds come only from the autoscale flags.
            minimum = args.min_workers if args.min_workers is not None else 1
            maximum = (
                args.max_workers if args.max_workers is not None else max(minimum, 4)
            )
            pool = Autoscaler(
                db_path,
                cache_dir,
                min_workers=minimum,
                max_workers=maximum,
                lease_ttl=args.lease_ttl,
            )
            workers_label = f"{minimum}-{maximum} autoscaled worker(s)"
        elif args.workers == 0:
            # Coordinator-only: no local pool -- execution is delegated to
            # `repro worker --coordinator` processes on this or other hosts.
            pool = None
            workers_label = "coordinator-only, remote workers"
        else:
            pool = WorkerPool(
                db_path, cache_dir, n_workers=args.workers, lease_ttl=args.lease_ttl
            )
            workers_label = f"{args.workers} worker(s)"
    except ValueError as error:
        server.shutdown()
        print(f"error: {error}", file=sys.stderr)
        return 2
    if pool is not None:
        pool.start()
    # SIGTERM (docker stop, systemd, CI traps) must tear the worker pool
    # down like Ctrl+C does -- the default handler would kill this process
    # without running the finally block, orphaning the worker processes.
    # Raising from the handler unwinds serve_forever's select loop.
    def _sigterm(signum: int, frame: object) -> None:
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _sigterm)
    print(
        f"repro service listening on http://{host}:{port} "
        f"({workers_label}, db {db_path}, cache {cache_dir})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if pool is not None:
            pool.stop()
        server.shutdown()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import signal

    from repro.service.worker import remote_worker_loop

    _configure_logging(args.log_level)
    cache_dir = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    if not 0 <= args.shard_index < max(1, args.shard_count):
        print(
            f"error: shard index {args.shard_index} outside 0..{args.shard_count - 1}",
            file=sys.stderr,
        )
        return 2

    def _sigterm(signum: int, frame: object) -> None:
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _sigterm)
    print(
        f"repro worker polling {args.coordinator} "
        f"(shard {args.shard_index}/{args.shard_count}, cache {cache_dir})",
        flush=True,
    )
    try:
        executed = remote_worker_loop(
            args.coordinator,
            cache_dir,
            shard_index=args.shard_index,
            shard_count=args.shard_count,
            poll_interval=args.poll_interval,
            max_jobs=args.max_jobs,
            worker_name=args.name,
        )
    except KeyboardInterrupt:
        return 0
    print(f"repro worker done ({executed} job(s) executed)", flush=True)
    return 0


def _client(url: str):
    from repro.service.client import ServiceClient

    return ServiceClient(url)


def _service_call(call):
    """Run one client call, mapping service/transport errors to exit codes."""
    from repro.service.client import ServiceError

    try:
        return call(), 0
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return None, 2 if error.status == 404 else 1
    except TimeoutError as error:
        print(f"error: {error}", file=sys.stderr)
        return None, 1
    except (ConnectionError, OSError) as error:
        print(f"error: cannot reach the service: {error}", file=sys.stderr)
        return None, 1


def _print_job(job: dict) -> None:
    print(f"job          : {job['id']}")
    print(f"scenario     : {job['scenario']}")
    print(f"state        : {job['state']}")
    if job.get("cancel_requested"):
        print("cancel       : requested (worker will stop at its next checkpoint)")
    print(f"attempts     : {job['attempts']}")
    if job.get("worker"):
        print(f"worker       : {job['worker']}")
    if job.get("error"):
        print(f"error        : {job['error'].strip().splitlines()[-1]}")
    # Mid-stage progress events (one per NSGA-II generation / MC batch)
    # would flood the status view; show only the newest one per stage,
    # in sequence order, alongside every non-progress event.
    events = list(job.get("events", ()))
    last_progress = {}
    for event in events:
        if event.get("status") == "progress":
            last_progress[event["stage"]] = event.get("seq")
    for event in events:
        if (
            event.get("status") == "progress"
            and last_progress.get(event["stage"]) != event.get("seq")
        ):
            continue
        payload = event.get("payload") or {}
        if "front" in payload:  # the Pareto points are chart data, not text
            payload = {key: value for key, value in payload.items() if key != "front"}
        numbers = ", ".join(
            f"{key}={value:.6g}" if isinstance(value, (int, float)) else f"{key}={value}"
            for key, value in payload.items()
        )
        print(f"  stage {event['stage']:<13}: {event['status']:<9} {numbers}")
    summary = job.get("summary")
    if summary:
        print("--- run summary ---")
        for key, value in sorted(summary.items()):
            print(f"  {key:28s}: {value}")


def _cmd_submit(args: argparse.Namespace, scenario: ScenarioConfig) -> int:
    client = _client(args.url)
    overrides = _overrides_from_args(args)
    job, code = _service_call(lambda: client.submit(scenario.name, overrides))
    if job is None:
        return code
    created = job.get("created")
    if args.wait:
        # wait() polls GET /jobs/<id>, whose payload already carries the
        # stage events -- no re-fetch needed once it turns terminal.
        job, code = _service_call(
            lambda: client.wait(job["id"], timeout=args.timeout)
        )
        if job is None:
            return code
    if args.json:
        print(json.dumps(job, indent=2, sort_keys=True))
    else:
        if created is not None:
            print("submitted new job" if created else "joined existing job")
        _print_job(job)
    # failed AND cancelled are unsuccessful outcomes: a script chaining
    # `repro submit --wait && <use the report>` must not proceed when
    # someone cancelled the job mid-run.
    return 1 if job["state"] in ("failed", "cancelled") else 0


def _resolve_job_id(args: argparse.Namespace) -> str:
    """The job id addressed by ``args.job`` (scenario names resolve to hashes)."""
    if args.job in SCENARIOS:
        scenario = get_scenario(args.job)
        if args.seed is not None:
            scenario = scenario.with_overrides(seed=args.seed)
        return scenario.config_hash()
    return args.job


def _cmd_status(args: argparse.Namespace) -> int:
    client = _client(args.url)
    job, code = _service_call(lambda: client.job(_resolve_job_id(args)))
    if job is None:
        return code
    if args.json:
        print(json.dumps(job, indent=2, sort_keys=True))
    else:
        _print_job(job)
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    client = _client(args.url)
    job, code = _service_call(lambda: client.cancel(_resolve_job_id(args)))
    if job is None:
        return code
    if args.json:
        print(json.dumps(job, indent=2, sort_keys=True))
        return 0
    print(
        "job cancelled"
        if job["state"] == "cancelled"
        else "cancel requested (the worker stops at its next checkpoint boundary)"
    )
    _print_job(job)
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    client = _client(args.url)
    # client.jobs is a transparently-paginating iterator; materialise it
    # inside _service_call so pagination errors map to exit codes too.
    jobs, code = _service_call(lambda: list(client.jobs(state=args.state)))
    if jobs is None:
        return code
    if args.json:
        print(json.dumps(jobs, indent=2, sort_keys=True))
        return 0
    print(f"{'job id':<18} {'scenario':<14} {'state':<8} {'attempts':>8} worker")
    for job in jobs:
        print(
            f"{job['id']:<18} {job['scenario']:<14} {job['state']:<8} "
            f"{job['attempts']:>8} {job.get('worker') or '-'}"
        )
    return 0


def _cmd_submit_sweep(args: argparse.Namespace) -> int:
    """Expand a registry glob (x technology axis) into batched submissions.

    ``repro submit-sweep 'vco-sweep-*' --technology generic012,generic065``
    posts one job per (matched scenario, technology) pair and prints a
    summary table of job ids; pairs whose config hash matches an existing
    job report as deduplicated rather than creating duplicate work.
    """
    import fnmatch

    matched = [
        name for name in scenario_names() if fnmatch.fnmatchcase(name, args.pattern)
    ]
    if not matched:
        print(
            f"error: no registered scenario matches {args.pattern!r} (see 'repro list')",
            file=sys.stderr,
        )
        return 2
    if args.technology is not None:
        technologies: List[Optional[str]] = [
            tech.strip() for tech in args.technology.split(",") if tech.strip()
        ]
        if not technologies:
            print("error: --technology must name at least one technology", file=sys.stderr)
            return 2
    else:
        technologies = [None]
    expansion = []
    for name in matched:
        for technology in technologies:
            overrides: dict = {}
            if technology is not None:
                # The name override is hash-excluded, so a pair whose
                # technology equals the scenario's own still dedups
                # against the plain scenario's job.
                overrides["technology"] = technology
                overrides["name"] = f"{name}@{technology}"
            if args.seed is not None:
                overrides["seed"] = args.seed
            expansion.append((name, technology, overrides))
    if args.dry_run:
        print(f"{'scenario':<18} {'technology':<12} job id")
        for name, technology, overrides in expansion:
            scenario = get_scenario(name)
            if overrides:
                scenario = scenario.with_overrides(**overrides)
            print(f"{name:<18} {technology or '(default)':<12} {scenario.config_hash()}")
        print(f"{len(expansion)} submission(s) (dry run, nothing posted)")
        return 0
    client = _client(args.url)
    rows: List[dict] = []

    def submit_all() -> List[dict]:
        for name, technology, overrides in expansion:
            job = client.submit(name, overrides or None)
            rows.append(
                dict(job, sweep_scenario=name, sweep_technology=technology)
            )
        return rows

    result, code = _service_call(submit_all)
    if result is None:
        return code
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    print(f"{'scenario':<18} {'technology':<12} {'job id':<18} {'state':<8} created")
    for row in rows:
        print(
            f"{row['sweep_scenario']:<18} {row['sweep_technology'] or '(default)':<12} "
            f"{row['id']:<18} {row['state']:<8} "
            f"{'new' if row.get('created') else 'dedup'}"
        )
    created = sum(1 for row in rows if row.get("created"))
    print(f"{len(rows)} submission(s): {created} new, {len(rows) - created} deduplicated")
    return 0


def _cmd_portfolio(args: argparse.Namespace) -> int:
    """List, locally run, submit or report a cross-technology portfolio."""
    from repro.experiments.portfolio import (
        get_portfolio,
        list_portfolios,
        merged_portfolio_report,
    )

    if args.name is None:
        portfolios = list_portfolios()
        if args.json:
            print(
                json.dumps(
                    [portfolio.as_dict() for portfolio in portfolios],
                    indent=2,
                    sort_keys=True,
                )
            )
            return 0
        print(f"{'name':<18} {'base':<12} {'technologies':<24} description")
        for portfolio in portfolios:
            print(
                f"{portfolio.name:<18} {portfolio.base_scenario:<12} "
                f"{','.join(portfolio.technologies):<24} {portfolio.description}"
            )
        return 0
    try:
        portfolio = get_portfolio(args.name)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    if args.submit:
        client = _client(args.url)
        result, code = _service_call(lambda: client.submit_portfolio(portfolio.name))
        if result is None:
            return code
        if args.json:
            print(json.dumps(result, indent=2, sort_keys=True))
            return 0
        print(f"{'child':<28} {'job id':<18} {'state':<8} created")
        for job in result["jobs"]:
            print(
                f"{job['scenario']:<28} {job['id']:<18} {job['state']:<8} "
                f"{'new' if job.get('created') else 'dedup'}"
            )
        print(
            f"{len(result['jobs'])} child job(s): {result['created']} new, "
            f"{result['deduplicated']} deduplicated"
        )
        return 0
    if args.run:
        for child in portfolio.child_scenarios():
            runner = ExperimentRunner(child, cache_dir=args.cache_dir, force=args.force)
            result = runner.run()
            print(
                f"child {child.name:<28} hash {result.config_hash} "
                f"({result.elapsed:.3f} s)"
            )
        payload = merged_portfolio_report(portfolio, args.cache_dir)
    elif args.report and args.local:
        payload = merged_portfolio_report(portfolio, args.cache_dir)
    elif args.report:
        client = _client(args.url)
        payload, code = _service_call(lambda: client.portfolio_report(portfolio.name))
        if payload is None:
            return code
    else:
        if args.json:
            print(json.dumps(portfolio.as_dict(), indent=2, sort_keys=True))
        else:
            _print_portfolio_description(portfolio.as_dict())
        return 0
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    _print_portfolio_report(payload)
    return 0


def _print_portfolio_description(info: dict) -> None:
    print(f"portfolio    : {info['name']}")
    print(f"base         : {info['base_scenario']}")
    print(f"description  : {info['description']}")
    for child in info["children"]:
        print(f"  {child['name']:<28} {child['technology']:<12} {child['config_hash']}")


def _print_portfolio_report(payload: dict) -> None:
    info = payload["portfolio"]
    print(f"portfolio    : {info['name']}")
    print(f"base         : {info['base_scenario']}")
    for child in payload["children"]:
        stages = ", ".join(child["stages_present"]) or "nothing cached"
        extras = []
        if child.get("front_size") is not None:
            extras.append(f"front={child['front_size']}")
        if child.get("job_state"):
            extras.append(f"job={child['job_state']}")
        suffix = f"  ({', '.join(extras)})" if extras else ""
        print(f"  {child['name']:<28} {child['config_hash']}  {stages}{suffix}")
    print(f"merged front : {payload['merged_front_size']} point(s)")
    for technology, count in sorted(payload["merged_front_by_technology"].items()):
        print(f"  {technology:<12}: {count} point(s)")


def _cmd_events(args: argparse.Namespace) -> int:
    """Stream one job's events to stdout until it reaches a terminal state."""
    client = _client(args.url)
    job_id = _resolve_job_id(args)

    def stream() -> Optional[str]:
        final_state = None
        for event in client.stream_events(job_id, last_event_id=args.after):
            if event.get("event") == "end":
                final_state = event.get("state")
                break
            if args.json:
                print(json.dumps(event, sort_keys=True), flush=True)
                continue
            payload = event.get("payload") or {}
            if "front" in payload:
                payload = {k: v for k, v in payload.items() if k != "front"}
            numbers = ", ".join(
                f"{key}={value:.6g}" if isinstance(value, (int, float)) else f"{key}={value}"
                for key, value in payload.items()
            )
            print(
                f"#{event['seq']:<4} {event['stage']:<13} {event['status']:<9} {numbers}",
                flush=True,
            )
        return final_state

    final_state, code = _service_call(stream)
    if code:
        return code
    if not args.json:
        print(f"job finished: {final_state}")
    return 1 if final_state in ("failed", "cancelled") else 0


def _span_tree_lines(spans: List[dict]) -> List[str]:
    """Render span records as an indented duration tree.

    Spans whose parent is missing from the record set (e.g. a child
    process's spans whose parent was re-parented across a merge gap)
    print as roots rather than disappearing.
    """
    ids = {span["span_id"] for span in spans}
    children: dict = {}
    for span in spans:
        parent = span.get("parent_id")
        children.setdefault(parent if parent in ids else None, []).append(span)
    lines: List[str] = []

    def walk(parent: Optional[str], depth: int) -> None:
        ordered = sorted(
            children.get(parent, ()),
            key=lambda span: (span.get("start", 0.0), span["span_id"]),
        )
        for span in ordered:
            attrs = span.get("attrs") or {}
            detail = " ".join(
                f"{key}={value}" for key, value in sorted(attrs.items())
            )
            duration_ms = float(span.get("duration", 0.0)) * 1000.0
            line = f"{duration_ms:>10.1f} ms  {'  ' * depth}{span['name']}"
            lines.append(line + (f"  [{detail}]" if detail else ""))
            walk(span["span_id"], depth + 1)

    walk(None, 0)
    return lines


def _print_stage_timings(spans: List[dict]) -> None:
    """The per-stage timing table ``repro report --timing`` prints."""
    stages = [span for span in spans if str(span.get("name", "")).startswith("stage.")]
    if not stages:
        print("no stage spans recorded (run with REPRO_OBS enabled to collect them)")
        return
    checkpoint_seconds = sum(
        float(span.get("duration", 0.0))
        for span in spans
        if span.get("name") == "checkpoint.store"
    )
    print("--- stage timings (from trace.jsonl) ---")
    for span in sorted(stages, key=lambda record: record.get("start", 0.0)):
        attrs = span.get("attrs") or {}
        source = attrs.get("source", "?")
        name = str(span["name"])[len("stage."):]
        print(f"  {name:<13}: {float(span.get('duration', 0.0)):>9.3f} s  ({source})")
    print(f"  {'checkpoints':<13}: {checkpoint_seconds:>9.3f} s  (all stores)")


def _cmd_trace(args: argparse.Namespace) -> int:
    job_id = _resolve_job_id(args)
    if args.local:
        from repro.experiments.cache import CacheEntry

        entry = CacheEntry(ArtefactCache(args.cache_dir).root / job_id)
        spans = entry.read_trace()
        if not spans:
            print(
                f"error: no trace recorded for job {job_id}"
                f" under {entry.directory}",
                file=sys.stderr,
            )
            return 1
        payload = {"job_id": job_id, "spans": spans, "span_count": len(spans)}
    else:
        client = _client(args.url)
        payload, code = _service_call(lambda: client.trace(job_id))
        if payload is None:
            return code
        spans = payload["spans"]
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"job          : {payload.get('job_id', job_id)}")
    if payload.get("state"):
        print(f"state        : {payload['state']}")
    print(f"trace id     : {payload.get('trace_id', spans[0].get('trace_id', job_id))}")
    print(f"spans        : {len(spans)}")
    for line in _span_tree_lines(spans):
        print(line)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    raise SystemExit(main())
