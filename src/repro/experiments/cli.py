"""The ``repro`` command-line interface.

Three subcommands turn the hierarchical flow into a small experiment
service::

    repro list                         # registered scenarios
    repro run table2                   # run (or resume) a scenario
    repro run table2 --evaluation vectorised --force
    repro report table2                # summarise cached artefacts

``run`` is resumable: artefacts are checkpointed per stage under the
scenario's config hash (see :mod:`repro.experiments.cache`), so a second
invocation of the same scenario loads the cached stages and is
bit-identical to the cold run.  ``--evaluation`` / ``--n-workers`` /
``--seed`` override the registered scenario; only ``--seed`` changes the
config hash (backends are bit-identical, so they share cache entries).

The module doubles as ``python -m repro.experiments.cli`` for environments
where the console script is not installed.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments.cache import ArtefactCache, STAGES
from repro.experiments.config import ScenarioConfig
from repro.experiments.registry import get_scenario, list_scenarios
from repro.experiments.runner import ExperimentResult, ExperimentRunner

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scenario registry and resumable runner for the hierarchical PLL flow.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered scenarios")

    run = subparsers.add_parser("run", help="run (or resume) a scenario")
    run.add_argument("scenario", help="registered scenario name (see 'repro list')")
    run.add_argument(
        "--evaluation",
        choices=("serial", "vectorised", "vectorized", "process"),
        default=None,
        help="batch-evaluation backend override (does not change the cache key)",
    )
    run.add_argument(
        "--n-workers", type=int, default=None, help="worker count for the process backend"
    )
    run.add_argument(
        "--seed", type=int, default=None, help="seed override (changes the cache key)"
    )
    run.add_argument("--cache-dir", default=None, help="cache root (default: .repro-cache)")
    run.add_argument(
        "--force", action="store_true", help="recompute every stage, overwriting checkpoints"
    )
    run.add_argument(
        "--output-dir",
        default=None,
        help="also export the combined model (.tbl files and Verilog-A) here",
    )
    run.add_argument(
        "--json", action="store_true", help="print the run summary as JSON instead of text"
    )

    report = subparsers.add_parser("report", help="summarise a scenario's cached artefacts")
    report.add_argument("scenario", help="registered scenario name")
    report.add_argument("--cache-dir", default=None, help="cache root (default: .repro-cache)")
    report.add_argument(
        "--seed", type=int, default=None, help="seed override used when the run was cached"
    )
    report.add_argument("--max-rows", type=int, default=10, help="Table-2 rows to print")
    report.add_argument(
        "--json", action="store_true", help="print the stored summary as JSON instead of text"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    # Resolve the scenario up front: an unknown name is a usage error
    # (exit 2); anything raised later is a genuine failure and propagates
    # with its traceback.
    try:
        scenario = _scenario_with_overrides(args)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    if args.command == "run":
        return _cmd_run(args, scenario)
    if args.command == "report":
        return _cmd_report(args, scenario)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


# -- subcommands -------------------------------------------------------------------------


def _cmd_list() -> int:
    scenarios = list_scenarios()
    print(
        f"{'name':<14} {'stages':>6} {'circuit GA':>12} {'system GA':>11} "
        f"{'MC/pt':>5} {'yield':>5} {'specs':<14} description"
    )
    for scenario in scenarios:
        print(
            f"{scenario.name:<14} {scenario.n_stages:>6} "
            f"{scenario.circuit_population:>5}x{scenario.circuit_generations:<3} "
            f"{scenario.system_population:>7}x{scenario.system_generations:<3} "
            f"{scenario.mc_samples_per_point:>5} {scenario.yield_samples:>5} "
            f"{scenario.specifications:<14} {scenario.description}"
        )
    return 0


def _scenario_with_overrides(args: argparse.Namespace) -> ScenarioConfig:
    scenario = get_scenario(args.scenario)
    overrides = {}
    if getattr(args, "evaluation", None) is not None:
        overrides["evaluation"] = args.evaluation
    if getattr(args, "n_workers", None) is not None:
        overrides["n_workers"] = args.n_workers
    if getattr(args, "seed", None) is not None:
        overrides["seed"] = args.seed
    return scenario.with_overrides(**overrides) if overrides else scenario


def _cmd_run(args: argparse.Namespace, scenario: ScenarioConfig) -> int:
    runner = ExperimentRunner(scenario, cache_dir=args.cache_dir, force=args.force)
    result = runner.run(output_directory=args.output_dir)
    if args.json:
        print(json.dumps(result.summary(), indent=2, sort_keys=True))
        return 0
    _print_run(result)
    return 0


def _print_run(result: ExperimentResult) -> None:
    print(f"scenario     : {result.scenario.name}")
    print(f"config hash  : {result.config_hash}")
    if result.cache_dir is not None:
        print(f"cache entry  : {result.cache_dir}")
    for outcome in result.outcomes:
        print(f"  stage {outcome.stage:<13}: {outcome.source:<9} ({outcome.seconds:.3f} s)")
    print(f"elapsed      : {result.elapsed:.3f} s")
    print("--- flow summary ---")
    for key, value in result.report.summary().items():
        print(f"  {key:28s}: {value:.6g}")
    if result.report.system_stage.selected is not None:
        print("--- selected design solution ---")
        for name, value in result.report.selected_values.items():
            print(f"  {name:8s}: {value:.6g}")


def _cmd_report(args: argparse.Namespace, scenario: ScenarioConfig) -> int:
    entry = ArtefactCache(args.cache_dir).entry_for(scenario)
    present = entry.stages_present()
    if not present:
        print(
            f"error: no cached artefacts for scenario {scenario.name!r} "
            f"(hash {scenario.config_hash()}) under {entry.directory.parent}; "
            f"run 'repro run {scenario.name}' first",
            file=sys.stderr,
        )
        return 1
    summary = entry.read_report_summary()
    if args.json:
        payload = {
            "scenario": scenario.as_dict(),
            "config_hash": scenario.config_hash(),
            "stages_present": present,
            "summary": summary,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"scenario     : {scenario.name}")
    print(f"config hash  : {scenario.config_hash()}")
    print(f"cache entry  : {entry.directory}")
    print(f"stages cached: {', '.join(present)} (of {', '.join(STAGES)})")
    if summary:
        print("--- last recorded summary ---")
        for key, value in sorted(summary.items()):
            print(f"  {key:28s}: {value}")
    if entry.has("system"):
        system = entry.load("system")
        rows = system.table2_records(max_rows=args.max_rows)
        if rows:
            print(f"--- Table-2 style rows (first {len(rows)}) ---")
            columns = list(rows[0])
            print("  " + " ".join(f"{column:>16s}" for column in columns))
            for row in rows:
                print("  " + " ".join(f"{row[column]:16.4g}" for column in columns))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    raise SystemExit(main())
