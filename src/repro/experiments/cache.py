"""Content-addressed disk cache for flow artefacts.

Layout (one directory per config hash)::

    <cache root>/
        <config_hash>/
            scenario.json       # human-readable scenario that produced it
            circuit.pkl         # CircuitStageResult (front + combined model)
            system.pkl          # SystemStageResult (front + selected design)
            yield.pkl           # YieldReport
            yield.partial.pkl   # mid-stage checkpoint of an interrupted yield stage
            verification.pkl    # VerificationReport (optional stage)
            report.json         # headline summary of the last completed run

The cache root defaults to ``.repro-cache`` under the current working
directory and can be overridden per call or globally through the
``REPRO_CACHE_DIR`` environment variable.

Artefacts are stored with :mod:`pickle` (they are numpy-heavy Python
objects; pickling round-trips float bits exactly, which is what makes a
resumed run bit-identical to a cold one) and written atomically -- the
payload goes to a temporary file first and is then :func:`os.replace`'d
into place, so a crashed run never leaves a truncated artefact behind.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.experiments.config import ScenarioConfig
from repro.obs.trace import spans_from_jsonl, spans_to_jsonl

__all__ = ["STAGES", "TRACE_FILE", "ArtefactCache", "CacheEntry", "default_cache_dir"]

#: Stage checkpoint names, in flow order.  ``corners`` runs right after the
#: circuit stage when the scenario names a corner set and is skipped
#: otherwise; like ``verification`` it is an optional artefact.
STAGES = ("circuit", "corners", "system", "yield", "verification")

#: The per-job span trace, one JSON span per line (see :mod:`repro.obs.trace`).
TRACE_FILE = "trace.jsonl"

#: Environment variable overriding the default cache root.
_CACHE_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``.repro-cache`` in the cwd."""
    return Path(os.environ.get(_CACHE_ENV) or ".repro-cache")


class CacheEntry:
    """All artefacts of one config hash (one directory)."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)

    def _stage_path(self, stage: str) -> Path:
        if stage not in STAGES:
            raise ValueError(f"unknown stage {stage!r}; expected one of {STAGES}")
        return self.directory / f"{stage}.pkl"

    # -- artefacts ----------------------------------------------------------------------

    def has(self, stage: str) -> bool:
        """Whether a checkpoint for ``stage`` exists."""
        return self._stage_path(stage).is_file()

    def load(self, stage: str) -> Any:
        """Unpickle the checkpointed artefact of ``stage``.

        Raises
        ------
        FileNotFoundError
            If the stage has not been checkpointed.
        """
        path = self._stage_path(stage)
        if not path.is_file():
            raise FileNotFoundError(f"no cached artefact for stage {stage!r} in {self.directory}")
        with open(path, "rb") as handle:
            return pickle.load(handle)

    def store(self, stage: str, artefact: Any) -> Path:
        """Atomically checkpoint ``artefact`` as the result of ``stage``."""
        path = self._stage_path(stage)
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(artefact, protocol=pickle.HIGHEST_PROTOCOL)
        self._atomic_write(path, payload)
        return path

    def stages_present(self) -> List[str]:
        """Checkpointed stages, in flow order."""
        return [stage for stage in STAGES if self.has(stage)]

    # -- mid-stage (partial) checkpoints ------------------------------------------------

    def _partial_path(self, stage: str) -> Path:
        self._stage_path(stage)  # validates the stage name
        return self.directory / f"{stage}.partial.pkl"

    def load_partial(self, stage: str) -> Optional[Any]:
        """The mid-stage checkpoint of ``stage``, or ``None`` when absent.

        A partial checkpoint holds the work an *interrupted* stage already
        completed (e.g. the yield stage's evaluated Monte Carlo batches) so
        a rerun resumes mid-stage instead of restarting it.  A checkpoint
        that cannot be unpickled (truncated by a hard crash before the
        atomic rename, different package version) is treated as absent.
        """
        path = self._partial_path(stage)
        if not path.is_file():
            return None
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except Exception:
            return None

    def store_partial(self, stage: str, state: Any) -> Path:
        """Atomically persist the mid-stage checkpoint of ``stage``."""
        path = self._partial_path(stage)
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        self._atomic_write(path, payload)
        return path

    def clear_partial(self, stage: str) -> None:
        """Drop the mid-stage checkpoint (the stage completed or restarted)."""
        try:
            os.unlink(self._partial_path(stage))
        except FileNotFoundError:
            pass

    # -- metadata -----------------------------------------------------------------------

    def write_scenario(self, scenario: ScenarioConfig) -> Path:
        """Record the scenario that owns this entry (human-readable JSON)."""
        return self._write_json("scenario.json", scenario.as_dict())

    def read_scenario(self) -> Optional[ScenarioConfig]:
        """The recorded scenario, or ``None`` when it cannot be recovered.

        ``scenario.json`` is informational metadata -- the config hash in
        the directory name is what keys the cache -- so an entry written
        by a different package version (unknown or missing fields, invalid
        values) yields ``None`` rather than an exception.
        """
        try:
            data = self._read_json("scenario.json")
        except json.JSONDecodeError:
            return None
        if data is None:
            return None
        try:
            return ScenarioConfig.from_dict(data)
        except (KeyError, TypeError, ValueError):
            return None

    def write_report_summary(self, summary: Dict[str, Any]) -> Path:
        """Record the headline numbers of the last completed run."""
        return self._write_json("report.json", summary)

    def read_report_summary(self) -> Optional[Dict[str, Any]]:
        """The last recorded run summary, or ``None``."""
        return self._read_json("report.json")

    def write_trace(self, records: List[Dict[str, Any]]) -> Path:
        """Persist the run's span records as ``trace.jsonl`` (atomically).

        The trace is observational metadata -- like ``report.json`` it
        never participates in resume decisions or artefact bytes.
        """
        path = self.directory / TRACE_FILE
        self.directory.mkdir(parents=True, exist_ok=True)
        self._atomic_write(path, spans_to_jsonl(records).encode("utf-8"))
        return path

    def read_trace(self) -> Optional[List[Dict[str, Any]]]:
        """The recorded span trace, or ``None`` when absent/unreadable."""
        path = self.directory / TRACE_FILE
        if not path.is_file():
            return None
        try:
            return spans_from_jsonl(path.read_text(encoding="utf-8"))
        except OSError:
            return None

    # -- low level ----------------------------------------------------------------------

    def _write_json(self, filename: str, data: Dict[str, Any]) -> Path:
        path = self.directory / filename
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(data, indent=2, sort_keys=True).encode("utf-8")
        self._atomic_write(path, payload)
        return path

    def _read_json(self, filename: str) -> Optional[Dict[str, Any]]:
        path = self.directory / filename
        if not path.is_file():
            return None
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    @staticmethod
    def _atomic_write(path: Path, payload: bytes) -> None:
        handle, tmp_name = tempfile.mkstemp(dir=str(path.parent), prefix=f".{path.name}.")
        try:
            with os.fdopen(handle, "wb") as tmp:
                tmp.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


class ArtefactCache:
    """Content-addressed store of flow artefacts, one entry per config hash."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def entry(self, config_hash: str) -> CacheEntry:
        """The cache entry of one config hash (created lazily on store)."""
        if not config_hash:
            raise ValueError("config_hash must be non-empty")
        return CacheEntry(self.root / config_hash)

    def entry_for(self, scenario: ScenarioConfig) -> CacheEntry:
        """The cache entry addressed by ``scenario.config_hash()``."""
        return self.entry(scenario.config_hash())

    def entries(self) -> List[CacheEntry]:
        """All existing cache entries (directories under the root)."""
        if not self.root.is_dir():
            return []
        return [
            CacheEntry(path) for path in sorted(self.root.iterdir()) if path.is_dir()
        ]
