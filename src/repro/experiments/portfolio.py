"""Portfolio scenarios: one submission fanned across technologies.

A :class:`PortfolioConfig` names a base scenario from the registry and a
list of technology cards; its children are the base scenario re-targeted
at each technology.  Because the scenario hash ignores names and
descriptions, a child whose budgets coincide with an already-registered
scenario (e.g. ``portfolio-table2``'s ``generic065`` child vs
``table2-65n``) shares its config hash -- submitting the portfolio to the
experiment service therefore dedups against runs that already happened,
and a local portfolio run reuses their cached artefacts.

The merged report condenses the children into one cross-technology view:
each child's circuit-stage Pareto records tagged with its technology plus
the cross-technology non-dominated front over (kvco, jitter, current).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.cache import ArtefactCache
from repro.experiments.config import ScenarioConfig
from repro.experiments.registry import get_scenario
from repro.experiments.report import report_payload

__all__ = [
    "PortfolioConfig",
    "PORTFOLIOS",
    "register_portfolio",
    "get_portfolio",
    "portfolio_names",
    "list_portfolios",
    "merged_portfolio_report",
]


@dataclass(frozen=True)
class PortfolioConfig:
    """One base scenario fanned across several technology cards."""

    name: str
    description: str
    base_scenario: str
    technologies: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a portfolio needs a non-empty name")
        if len(self.technologies) < 2:
            raise ValueError("a portfolio needs at least two technologies")
        # Fail fast on unknown base scenarios and technology keys.
        self.child_scenarios()

    def child_scenarios(self) -> List[ScenarioConfig]:
        """The base scenario re-targeted at each technology.

        Only ``name``/``description``/``technology`` change, so a child's
        config hash equals that of any registered scenario with the same
        budgets on the same card -- that is what makes service submission
        dedup against prior runs.
        """
        base = get_scenario(self.base_scenario)
        return [
            base.with_overrides(
                name=f"{self.name}/{technology}",
                description=f"{self.name} member on {technology}",
                technology=technology,
            )
            for technology in self.technologies
        ]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-compatible summary including per-child config hashes."""
        return {
            "name": self.name,
            "description": self.description,
            "base_scenario": self.base_scenario,
            "technologies": list(self.technologies),
            "children": [
                {
                    "name": child.name,
                    "technology": child.technology,
                    "config_hash": child.config_hash(),
                }
                for child in self.child_scenarios()
            ],
        }


#: All registered portfolios, keyed by name.
PORTFOLIOS: Dict[str, PortfolioConfig] = {}


def register_portfolio(
    portfolio: PortfolioConfig, overwrite: bool = False
) -> PortfolioConfig:
    """Add a portfolio to the registry and return it."""
    if not overwrite and portfolio.name in PORTFOLIOS:
        raise ValueError(f"portfolio {portfolio.name!r} is already registered")
    PORTFOLIOS[portfolio.name] = portfolio
    return portfolio


def get_portfolio(name: str) -> PortfolioConfig:
    """Look up a registered portfolio by name.

    Raises
    ------
    KeyError
        With the list of known names if ``name`` is not registered.
    """
    try:
        return PORTFOLIOS[name]
    except KeyError:
        known = ", ".join(portfolio_names())
        raise KeyError(f"unknown portfolio {name!r}; registered portfolios: {known}") from None


def portfolio_names() -> List[str]:
    """Names of all registered portfolios, in registration order."""
    return list(PORTFOLIOS)


def list_portfolios() -> List[PortfolioConfig]:
    """All registered portfolios in registration order."""
    return list(PORTFOLIOS.values())


# -- merged reporting --------------------------------------------------------------------

#: Pareto objectives of the merged cross-technology view: (name, maximise).
_MERGE_OBJECTIVES = (("kvco", True), ("jitter", False), ("current", False))


def _dominates(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    not_worse = all(
        (a[name] >= b[name] if maximise else a[name] <= b[name])
        for name, maximise in _MERGE_OBJECTIVES
    )
    strictly_better = any(
        (a[name] > b[name] if maximise else a[name] < b[name])
        for name, maximise in _MERGE_OBJECTIVES
    )
    return not_worse and strictly_better


def merged_portfolio_report(
    portfolio: PortfolioConfig, cache_dir: Optional[os.PathLike] = None
) -> Dict[str, Any]:
    """Cross-technology merged report of a portfolio's cached children.

    Children without cached artefacts appear with ``"stages_present":
    []`` so the caller can tell pending from completed work; the merged
    Pareto view covers the children whose circuit stage is cached.
    """
    cache = ArtefactCache(cache_dir)
    children: List[Dict[str, Any]] = []
    merged_points: List[Dict[str, Any]] = []
    for child in portfolio.child_scenarios():
        payload = report_payload(child, cache_dir)
        child_entry: Dict[str, Any] = {
            "name": child.name,
            "technology": child.technology,
            "config_hash": child.config_hash(),
            "stages_present": payload["stages_present"] if payload else [],
            "summary": payload["summary"] if payload else None,
        }
        entry = cache.entry_for(child)
        if entry.has("circuit"):
            records = entry.load("circuit").model.performance.records()
            child_entry["front_size"] = len(records)
            for record in records:
                merged_points.append(dict(record, technology=child.technology))
        children.append(child_entry)
    front = [
        point
        for point in merged_points
        if not any(
            _dominates(other, point) for other in merged_points if other is not point
        )
    ]
    per_technology: Dict[str, int] = {}
    for point in front:
        per_technology[point["technology"]] = per_technology.get(point["technology"], 0) + 1
    return {
        "portfolio": portfolio.as_dict(),
        "children": children,
        "merged_front": front,
        "merged_front_size": len(front),
        "merged_front_by_technology": per_technology,
    }


# -- built-in portfolios -----------------------------------------------------------------

register_portfolio(
    PortfolioConfig(
        name="portfolio-table2",
        description=(
            "The paper's table2 budgets fanned across the generic012 and "
            "generic065 technology cards, merged into one cross-technology "
            "Pareto view"
        ),
        base_scenario="table2",
        technologies=("generic012", "generic065"),
    )
)

register_portfolio(
    PortfolioConfig(
        name="portfolio-smoke",
        description=(
            "Seconds-scale portfolio: fast-smoke budgets across both "
            "technology cards (CI and tests)"
        ),
        base_scenario="fast-smoke",
        technologies=("generic012", "generic065"),
    )
)
