"""Declarative scenario configurations for the hierarchical flow.

A :class:`ScenarioConfig` is a frozen value object describing one complete
experiment: which technology and specification set to use, the VCO ring
topology, the NSGA-II and Monte Carlo budgets of both stages, and the
seed.  Scenarios refer to technologies and specification sets by *registry
key* (:data:`repro.process.technology.TECHNOLOGIES`,
:data:`repro.core.specification.SPECIFICATION_SETS`) so they remain plain,
hashable, JSON-serialisable data -- which is what makes content-addressed
caching possible.

Two hashes matter:

* :meth:`ScenarioConfig.config_hash` covers every field that determines
  the *numbers* an experiment produces (seed, budgets, topology,
  technology, specifications).  Execution details -- the evaluation
  backend, the worker count, which optional stages to run -- are
  deliberately excluded: all backends are bit-identical by the project's
  enforced invariant, and optional stages are cached independently.  A
  ``vectorised`` rerun therefore resumes from a ``serial`` run's cache.
* Equality (``==``) compares *all* fields, as usual for dataclasses.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, Optional

from repro.circuits.topology import DEFAULT_TOPOLOGY, get_topology, topology_names
from repro.core.specification import SpecificationSet, specification_set
from repro.optim.evaluation import EVALUATOR_CHOICES
from repro.optim.nsga2 import NSGA2Config
from repro.process.corners import CornerSet, corner_set, corner_set_names
from repro.process.technology import Technology, technology
from repro.spice.plan import ENGINES as SPICE_ENGINES

__all__ = ["ScenarioConfig", "HASH_EXCLUDED_FIELDS"]

#: Fields excluded from :meth:`ScenarioConfig.config_hash`: they change how
#: an experiment executes, never what it computes.
HASH_EXCLUDED_FIELDS = (
    "name",
    "description",
    "evaluation",
    "n_workers",
    "run_yield",
    "run_verification",
    "spice_engine",
)


@dataclass(frozen=True)
class ScenarioConfig:
    """One fully specified experiment through the hierarchical flow.

    Parameters
    ----------
    name:
        Registry name of the scenario (``table2``, ``fast-smoke``, ...).
    description:
        One-line human description shown by ``repro list``.
    technology:
        Key into :data:`repro.process.technology.TECHNOLOGIES`.
    specifications:
        Key into :data:`repro.core.specification.SPECIFICATION_SETS`.
    n_stages:
        VCO ring length (odd, >= 3; the paper uses 5).
    circuit_population / circuit_generations:
        NSGA-II budget of the circuit-level stage (paper: 100 x 30).
    system_population / system_generations:
        NSGA-II budget of the system-level stage.
    mc_samples_per_point:
        Monte Carlo samples per Pareto point for the variation model
        (paper: 100).
    yield_samples:
        Monte Carlo samples of the final yield verification (paper: 500).
    max_model_points:
        Cap on the Pareto points carried into the combined model
        (``None`` keeps all).
    seed:
        Seed of every RNG stream in the flow.
    evaluation:
        Batch-evaluation backend (``serial`` / ``vectorised`` /
        ``process``); excluded from the config hash because all backends
        are bit-identical for a fixed seed.
    n_workers:
        Worker count for the ``process`` backend and the SPICE batch pool.
    run_yield / run_verification:
        Which optional stages the runner executes.
    spice_engine:
        Backend of the transistor-level verification simulations
        (``reference`` / ``compiled`` / ``lanes``).  Excluded from the
        config hash: the engines agree to solver tolerance (not to the
        bit), and the numbers an experiment *selects and reports* come
        from the analytical evaluator either way.
    topology:
        Key into :data:`repro.circuits.topology.TOPOLOGIES` selecting the
        circuit family the flow optimises.  The default (``ring-vco``)
        hashes identically to scenarios that predate the field, so
        existing cache entries stay valid.
    corners:
        Name of a registered corner set
        (:data:`repro.process.corners.CORNER_SETS`) to sweep the circuit
        Pareto front across after the circuit stage; ``""`` (the default,
        hash-neutral) skips the sweep.
    """

    name: str
    description: str = ""
    technology: str = "generic012"
    specifications: str = "pll_system"
    n_stages: int = 5
    circuit_population: int = 40
    circuit_generations: int = 15
    system_population: int = 24
    system_generations: int = 10
    mc_samples_per_point: int = 100
    yield_samples: int = 500
    max_model_points: Optional[int] = 24
    seed: int = 2009
    evaluation: str = "serial"
    n_workers: Optional[int] = None
    run_yield: bool = True
    run_verification: bool = False
    spice_engine: str = "reference"
    topology: str = DEFAULT_TOPOLOGY
    corners: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a non-empty name")
        if self.topology not in topology_names():
            raise ValueError(
                f"topology must be one of {', '.join(topology_names())}; "
                f"got {self.topology!r}"
            )
        self.resolve_topology().validate_n_stages(self.n_stages)
        for field_name in (
            "circuit_population",
            "circuit_generations",
            "system_population",
            "system_generations",
            "mc_samples_per_point",
            "yield_samples",
        ):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be at least 1")
        if self.max_model_points is not None and self.max_model_points < 1:
            raise ValueError("max_model_points must be at least 1 (or None)")
        if (self.evaluation or "serial").lower() not in EVALUATOR_CHOICES:
            raise ValueError(
                f"evaluation must be one of {', '.join(EVALUATOR_CHOICES)}; "
                f"got {self.evaluation!r}"
            )
        if self.n_workers is not None and self.n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if self.spice_engine not in SPICE_ENGINES:
            raise ValueError(
                f"spice_engine must be one of {', '.join(SPICE_ENGINES)}; "
                f"got {self.spice_engine!r}"
            )
        if self.corners and self.corners not in corner_set_names():
            raise ValueError(
                f"corners must be empty or one of {', '.join(corner_set_names())}; "
                f"got {self.corners!r}"
            )
        # Fail fast on unknown registry keys instead of at run time.
        self.resolve_technology()
        self.resolve_specifications()

    # -- registry resolution -------------------------------------------------------------

    def resolve_topology(self):
        """The :class:`~repro.circuits.topology.CircuitTopology` optimised."""
        return get_topology(self.topology)

    def resolve_corners(self) -> Optional[CornerSet]:
        """The swept :class:`~repro.process.corners.CornerSet`, if any."""
        return corner_set(self.corners) if self.corners else None

    def resolve_technology(self) -> Technology:
        """The :class:`~repro.process.technology.Technology` this scenario runs in."""
        return technology(self.technology)

    def resolve_specifications(self) -> SpecificationSet:
        """The system-level :class:`~repro.core.specification.SpecificationSet`."""
        return specification_set(self.specifications)

    # -- NSGA-II plumbing ----------------------------------------------------------------

    def circuit_nsga2_config(self) -> NSGA2Config:
        """NSGA-II configuration of the circuit-level stage."""
        return NSGA2Config(
            population_size=self.circuit_population,
            generations=self.circuit_generations,
            seed=self.seed,
            evaluator=self.evaluation,
            n_workers=self.n_workers,
        )

    def system_nsga2_config(self) -> NSGA2Config:
        """NSGA-II configuration of the system-level stage."""
        return NSGA2Config(
            population_size=self.system_population,
            generations=self.system_generations,
            seed=self.seed,
            evaluator=self.evaluation,
            n_workers=self.n_workers,
        )

    # -- serialisation / hashing ---------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """Serialise to a plain JSON-compatible dict (one entry per field)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, values: Dict[str, Any]) -> "ScenarioConfig":
        """Rebuild a scenario from :meth:`as_dict` output.

        Unknown keys raise ``KeyError`` so stale cache metadata written by
        a different version is detected instead of silently dropped.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(values) - known
        if unknown:
            raise KeyError(f"unknown scenario field(s): {sorted(unknown)}")
        return cls(**values)

    def with_overrides(self, **overrides: Any) -> "ScenarioConfig":
        """A copy with the given fields replaced (validation re-runs).

        This is how the CLI applies ``--evaluation`` / ``--n-workers`` /
        ``--seed`` on top of a registered scenario.
        """
        return replace(self, **overrides)

    def hashed_fields(self) -> Dict[str, Any]:
        """The payload covered by :meth:`config_hash`.

        Contains every scenario field that determines results, plus the
        *resolved contents* behind the registry keys (the technology's
        model-card parameters, the specification windows) and the full
        NSGA-II configurations including their defaulted operator
        settings.  Hashing resolved contents -- not just the keys -- means
        that editing a registered specification set or technology card
        invalidates existing cache entries instead of silently serving
        results computed against the old definition.
        """
        payload: Dict[str, Any] = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in HASH_EXCLUDED_FIELDS
        }
        # The topology and corner fields postdate the original hash layout.
        # At their defaults they drop out of the payload entirely, so every
        # scenario written before the fields existed keeps its hash (the
        # golden-hash test pins this); any other value changes the results
        # and must change the hash.
        if self.topology == DEFAULT_TOPOLOGY:
            payload.pop("topology")
        if not self.corners:
            payload.pop("corners")
        else:
            payload["resolved_corners"] = [
                asdict(corner) for corner in self.resolve_corners()
            ]
        payload["resolved_technology"] = asdict(self.resolve_technology())
        payload["resolved_specifications"] = {
            spec.name: [spec.lower, spec.upper] for spec in self.resolve_specifications()
        }
        # Operator settings (crossover/mutation etas, probabilities) alter
        # the optimisation trajectory; the execution-detail fields do not.
        for key, config in (
            ("circuit_nsga2", self.circuit_nsga2_config()),
            ("system_nsga2", self.system_nsga2_config()),
        ):
            settings = config.as_dict()
            settings.pop("evaluator")
            settings.pop("n_workers")
            payload[key] = settings
        return payload

    def config_hash(self) -> str:
        """Content hash of everything that determines the results.

        Returns
        -------
        str
            The first 16 hex digits of the SHA-256 over the canonical JSON
            serialisation of :meth:`hashed_fields`.  Two scenarios with
            equal hashes produce bit-identical artefacts (for any
            evaluation backend), so the hash is the cache key of the
            experiment runner.  Stable across processes and pickling --
            it depends only on field values and the resolved registry
            contents, never on object identity.
        """
        canonical = json.dumps(self.hashed_fields(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
