"""The JSON report of a scenario's cached artefacts.

One payload, two front ends: ``repro report --json`` prints it and the
experiment service serves it as ``GET /jobs/<id>/report`` -- sharing the
builder is what guarantees the service reports exactly what the CLI
reports for the same configuration.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from repro.experiments.cache import ArtefactCache
from repro.experiments.config import ScenarioConfig

__all__ = ["report_payload"]


def report_payload(
    scenario: ScenarioConfig, cache_dir: Optional[os.PathLike] = None
) -> Optional[Dict[str, Any]]:
    """The stored report of a scenario, or ``None`` when nothing is cached.

    Contains the scenario, its config hash, which stages are checkpointed
    and the headline summary recorded by the last completed run.
    """
    entry = ArtefactCache(cache_dir).entry_for(scenario)
    stages_present = entry.stages_present()
    if not stages_present:
        return None
    return {
        "scenario": scenario.as_dict(),
        "config_hash": scenario.config_hash(),
        "stages_present": stages_present,
        "summary": entry.read_report_summary(),
    }
