"""The JSON report of a scenario's cached artefacts.

One payload, two front ends: ``repro report --json`` prints it and the
experiment service serves it as ``GET /jobs/<id>/report`` -- sharing the
builder is what guarantees the service reports exactly what the CLI
reports for the same configuration.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.experiments.cache import ArtefactCache
from repro.experiments.config import ScenarioConfig

__all__ = ["report_payload"]


def report_payload(
    scenario: ScenarioConfig,
    cache_dir: Optional[os.PathLike] = None,
    events: Optional[List[Dict[str, Any]]] = None,
) -> Optional[Dict[str, Any]]:
    """The stored report of a scenario, or ``None`` when nothing is cached.

    Contains the scenario, its config hash, which stages are checkpointed
    and the headline summary recorded by the last completed run.  When the
    caller has a progress-event log (the experiment service's job store
    keeps one per job), passing it as ``events`` attaches the run's
    convergence history -- per-generation Pareto fronts, per-batch yield
    estimates -- under an ``events`` key; the CLI path, which has no event
    log, omits the key so both payloads stay comparable field-by-field.
    """
    entry = ArtefactCache(cache_dir).entry_for(scenario)
    stages_present = entry.stages_present()
    if not stages_present:
        return None
    payload: Dict[str, Any] = {
        "scenario": scenario.as_dict(),
        "config_hash": scenario.config_hash(),
        "stages_present": stages_present,
        "summary": entry.read_report_summary(),
    }
    if events is not None:
        payload["events"] = events
    return payload
