"""Scenario registry, content-addressed caching and the resumable runner.

This subsystem turns :class:`~repro.core.flow.HierarchicalFlow` from a
one-shot script helper into a small experiment service:

* :mod:`repro.experiments.config` -- frozen, hashable
  :class:`ScenarioConfig` value objects describing one experiment each
  (technology, specification set, ring topology, NSGA-II and Monte Carlo
  budgets, seed, backend).
* :mod:`repro.experiments.registry` -- the named scenario registry
  (``table2``, ``fast-smoke``, the ``vco-sweep-*`` topology family,
  ``low-power``).
* :mod:`repro.experiments.cache` -- a content-addressed disk cache keyed
  by :meth:`ScenarioConfig.config_hash`, holding one pickled artefact per
  flow stage.
* :mod:`repro.experiments.runner` -- :class:`ExperimentRunner`, which
  checkpoints after every stage and *resumes* (bit-identically) instead
  of recomputing when a rerun hits an existing cache entry.
* :mod:`repro.experiments.cli` -- the ``repro list|run|report`` console
  entry point.

Quick start::

    from repro.experiments import ExperimentRunner, get_scenario

    result = ExperimentRunner(get_scenario("fast-smoke")).run()
    print(result.summary())          # second call resumes from cache
"""

from repro.experiments.cache import ArtefactCache, CacheEntry, default_cache_dir
from repro.experiments.config import ScenarioConfig
from repro.experiments.registry import (
    SCENARIOS,
    get_scenario,
    list_scenarios,
    register,
    scenario_names,
)
from repro.experiments.runner import ExperimentResult, ExperimentRunner, StageOutcome

__all__ = [
    "ScenarioConfig",
    "SCENARIOS",
    "register",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    "ArtefactCache",
    "CacheEntry",
    "default_cache_dir",
    "ExperimentRunner",
    "ExperimentResult",
    "StageOutcome",
]
