"""The artifact-store seam: local disk or coordinator-backed over HTTP.

PR 8 puts the content-addressed stage cache behind an interface so the
*same* :class:`~repro.experiments.runner.ExperimentRunner` can run
against either backend:

* :class:`LocalArtifactStore` -- today's ``.repro-cache/`` directory
  (it *is* :class:`~repro.experiments.cache.ArtefactCache`, under the
  seam's name).
* :class:`HttpArtifactStore` -- the coordinator's artefact tree spoken
  over ``GET/PUT /v1/artifacts/<config_hash>/<name>``, with the local
  disk cache as a read-through cache.  Stage pickles are immutable once
  written (content-addressed by config hash), so a local copy never
  goes stale; mid-stage ``*.partial.pkl`` checkpoints are mutable and
  therefore fetched remote-first.

Byte identity across the seam: artefacts travel as the exact pickle
bytes the runner produced -- the store never re-serialises -- so a stage
fetched from the coordinator is bit-identical to one computed locally.

Downloads are written atomically (temp file + :func:`os.replace`,
mirroring the cache's write rule) and the transport verifies the
declared ``Content-Length``, so a connection dropped mid-download can
never leave a truncated artefact in the local cache.
"""

from __future__ import annotations

import abc
import http.client
import logging
import os
import pickle
import re
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.cache import STAGES, TRACE_FILE, ArtefactCache, CacheEntry
from repro.experiments.config import ScenarioConfig
from repro.obs import metrics as obs_metrics

__all__ = [
    "ARTIFACT_NAME_RE",
    "ArtifactStore",
    "ArtifactTransportError",
    "HttpArtifactStore",
    "HttpTransport",
    "LocalArtifactStore",
    "artifact_names",
]

#: Every file name the artifact protocol may move: the four stage
#: pickles, their mid-stage partials, the two JSON metadata files and
#: the per-job span trace.
ARTIFACT_NAME_RE = re.compile(
    r"^(?:(?:circuit|corners|system|yield|verification)(?:\.partial)?\.pkl"
    r"|(?:scenario|report)\.json|trace\.jsonl)$"
)


def artifact_names() -> List[str]:
    """All transferable artifact file names (for docs and validation)."""
    names = [f"{stage}.pkl" for stage in STAGES]
    names += [f"{stage}.partial.pkl" for stage in STAGES]
    names += ["scenario.json", "report.json", TRACE_FILE]
    return names


_log = logging.getLogger("repro.service.artifacts")

_registry = obs_metrics.get_registry()
#: Bytes moved over the artifact protocol, by direction (``up``/``down``).
ARTIFACT_BYTES = _registry.counter(
    "repro_artifact_bytes_total",
    "Artifact bytes transferred over the /v1/artifacts protocol",
    ("direction",),
)
#: Transport-level retries the bounded retry loop performed.
ARTIFACT_RETRIES = _registry.counter(
    "repro_artifact_retries_total",
    "Artifact transport retries after a transient network failure",
)
#: Previously-silent best-effort push/delete failures, now counted.
ARTIFACT_PUSH_FAILURES = _registry.counter(
    "repro_artifact_push_failures_total",
    "Best-effort artifact uploads/deletes that failed after retries",
    ("name",),
)


class ArtifactTransportError(OSError):
    """A network-level artifact transfer failure (after retries)."""


class ArtifactStore(abc.ABC):
    """Where stage artefacts live: a directory of entries keyed by the
    scenario's config hash.

    Entries expose the :class:`~repro.experiments.cache.CacheEntry`
    surface (``has/load/store``, ``load_partial/store_partial/
    clear_partial``, scenario and report metadata) -- the duck type the
    runner checkpoints through.
    """

    #: Local directory backing (or read-through caching) the entries.
    root: Path

    @abc.abstractmethod
    def entry(self, config_hash: str):
        """The entry of one config hash (created lazily on store)."""

    def entry_for(self, scenario: ScenarioConfig):
        """The entry addressed by ``scenario.config_hash()``."""
        return self.entry(scenario.config_hash())


class LocalArtifactStore(ArtefactCache, ArtifactStore):
    """Today's on-disk cache, under the seam's name.

    :class:`~repro.experiments.cache.ArtefactCache` already satisfies
    the interface; this subclass only gives the local backend a name
    symmetric with :class:`HttpArtifactStore`.
    """


class HttpTransport:
    """Minimal stdlib HTTP byte transport: ``request() -> (status, body)``.

    Shared by :class:`HttpArtifactStore` and
    :class:`~repro.service.remote.RemoteJobStore`; the fault-injection
    harness wraps this interface to drop/delay/duplicate calls.  Reads
    the full body and verifies it against the declared
    ``Content-Length``, so a connection cut mid-response surfaces as
    :class:`ArtifactTransportError` instead of truncated bytes.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        #: Response headers of the most recent exchange (lower-cased
        #: keys).  The trace-context propagation on ``/v1/claim`` reads
        #: the coordinator's ``X-Repro-Trace`` header from here.
        self.last_response_headers: Dict[str, str] = {}

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, bytes]:
        """One HTTP exchange; returns ``(status, body_bytes)``.

        HTTP error statuses are *returned*, not raised -- the caller
        decides what a 404 means.  Network-level failures (refused,
        reset, timeout, short read) raise :class:`ArtifactTransportError`.
        """
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            headers=dict(headers or {}),
            method=method,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                payload = response.read()
                declared = response.headers.get("Content-Length")
                if declared is not None and len(payload) != int(declared):
                    raise ArtifactTransportError(
                        f"short read: got {len(payload)} of {declared} bytes"
                        f" for {method} {path}"
                    )
                self.last_response_headers = {
                    key.lower(): value for key, value in response.headers.items()
                }
                return response.status, payload
        except urllib.error.HTTPError as error:
            self.last_response_headers = {
                key.lower(): value for key, value in error.headers.items()
            }
            return error.code, error.read()
        except (
            urllib.error.URLError,
            http.client.HTTPException,
            ConnectionError,
            TimeoutError,
            OSError,
        ) as error:
            raise ArtifactTransportError(f"{method} {path}: {error}") from error


class HttpArtifactStore(ArtifactStore):
    """Coordinator-backed artifact store with a local read-through cache.

    Parameters
    ----------
    base_url:
        The coordinator, e.g. ``http://127.0.0.1:8321``.
    cache_dir:
        Local directory used as the read-through cache (and as the
        runner's working tree).  Defaults to the standard cache root.
    transport:
        Injectable transport (the fault harness passes a flaky one).
    retries / retry_delay:
        Bounded retry policy for transient transport failures.  Every
        protocol operation is idempotent -- GETs are pure, PUTs write
        the same content-addressed bytes atomically -- so retrying (or a
        network-level duplicate) is always safe.
    """

    def __init__(
        self,
        base_url: str,
        cache_dir: Optional[os.PathLike] = None,
        transport: Optional[HttpTransport] = None,
        retries: int = 3,
        retry_delay: float = 0.05,
    ) -> None:
        self.local = LocalArtifactStore(cache_dir)
        self.root = self.local.root
        self.transport = transport or HttpTransport(base_url)
        self.retries = max(1, int(retries))
        self.retry_delay = float(retry_delay)

    def entry(self, config_hash: str) -> "HttpArtifactEntry":
        if not config_hash:
            raise ValueError("config_hash must be non-empty")
        return HttpArtifactEntry(self, config_hash, self.local.entry(config_hash))

    # -- wire operations (shared by every entry) -----------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, bytes]:
        """One artifact exchange with bounded retries on transport loss."""
        last_error: Optional[ArtifactTransportError] = None
        for attempt in range(self.retries):
            try:
                return self.transport.request(
                    method, path, body, {"Content-Type": "application/octet-stream"}
                )
            except ArtifactTransportError as error:
                last_error = error
                if attempt + 1 < self.retries:
                    ARTIFACT_RETRIES.inc()
                    time.sleep(self.retry_delay * (attempt + 1))
        assert last_error is not None
        raise last_error

    def fetch(self, config_hash: str, name: str) -> Optional[bytes]:
        """Download one artifact's bytes, or ``None`` when absent (404)."""
        status, payload = self._request("GET", f"/v1/artifacts/{config_hash}/{name}")
        if status == 404:
            return None
        if status != 200:
            raise ArtifactTransportError(
                f"GET /v1/artifacts/{config_hash}/{name} -> HTTP {status}"
            )
        ARTIFACT_BYTES.inc(len(payload), direction="down")
        return payload

    def push(self, config_hash: str, name: str, payload: bytes) -> None:
        """Upload one artifact's exact bytes to the coordinator."""
        status, _ = self._request(
            "PUT", f"/v1/artifacts/{config_hash}/{name}", payload
        )
        if status not in (200, 201, 204):
            raise ArtifactTransportError(
                f"PUT /v1/artifacts/{config_hash}/{name} -> HTTP {status}"
            )
        ARTIFACT_BYTES.inc(len(payload), direction="up")

    def delete(self, config_hash: str, name: str) -> None:
        """Remove one artifact on the coordinator (absent is fine)."""
        status, _ = self._request("DELETE", f"/v1/artifacts/{config_hash}/{name}")
        if status not in (200, 204, 404):
            raise ArtifactTransportError(
                f"DELETE /v1/artifacts/{config_hash}/{name} -> HTTP {status}"
            )


class HttpArtifactEntry:
    """One config hash's artefacts, coordinator-authoritative.

    Implements the :class:`~repro.experiments.cache.CacheEntry` duck
    type.  Final stage pickles are immutable (content-addressed), so the
    local copy is trusted once present; mid-stage partials are mutable
    and read remote-first so a reclaiming worker on another host resumes
    from the *latest* checkpoint, not a stale local one.
    """

    def __init__(
        self, remote: HttpArtifactStore, config_hash: str, local: CacheEntry
    ) -> None:
        # Named ``remote`` (not ``store``): an instance attribute called
        # ``store`` would shadow the store() method of the entry protocol.
        self.remote = remote
        self.config_hash = config_hash
        self.local = local
        #: The local read-through directory (same layout as CacheEntry).
        self.directory = local.directory

    # -- read-through plumbing -----------------------------------------------------------

    def _pull(self, name: str) -> bool:
        """Fetch one artifact into the local cache; ``True`` if it exists.

        The download lands in a temp file and is renamed into place
        (:meth:`CacheEntry._atomic_write`), mirroring the cache's atomic
        write rule: a crash or short read never leaves a truncated file.
        """
        payload = self.remote.fetch(self.config_hash, name)
        if payload is None:
            return False
        self.directory.mkdir(parents=True, exist_ok=True)
        CacheEntry._atomic_write(self.directory / name, payload)
        return True

    def _push_file(self, name: str) -> None:
        """Upload the local file's exact bytes (no re-serialisation)."""
        payload = (self.directory / name).read_bytes()
        self.remote.push(self.config_hash, name, payload)

    def _push_best_effort(self, name: str) -> None:
        """Upload where failure only costs a recompute on reclaim.

        Never silent: every swallowed transport failure is counted
        (``repro_artifact_push_failures_total``) and logged with the
        job id so a flaky coordinator link shows up in metrics instead
        of vanishing.
        """
        try:
            self._push_file(name)
        except ArtifactTransportError as error:
            ARTIFACT_PUSH_FAILURES.inc(name=name)
            _log.warning(
                "job %s: best-effort push of %s failed: %s",
                self.config_hash,
                name,
                error,
            )

    # -- artefacts -----------------------------------------------------------------------

    def has(self, stage: str) -> bool:
        """Whether the stage artefact exists locally or on the coordinator."""
        if self.local.has(stage):
            return True
        return self._pull(f"{stage}.pkl")

    def load(self, stage: str) -> Any:
        """The stage artefact, fetched through the local cache."""
        if not self.local.has(stage):
            if not self._pull(f"{stage}.pkl"):
                raise FileNotFoundError(
                    f"no artefact for stage {stage!r} under {self.config_hash}"
                    f" locally or on the coordinator"
                )
        return self.local.load(stage)

    def store(self, stage: str, artefact: Any) -> Path:
        """Checkpoint locally, then publish the identical bytes."""
        path = self.local.store(stage, artefact)
        self._push_file(f"{stage}.pkl")
        return path

    def stages_present(self) -> List[str]:
        """Stages available locally or on the coordinator, in flow order."""
        return [stage for stage in STAGES if self.has(stage)]

    # -- mid-stage (partial) checkpoints -------------------------------------------------

    def load_partial(self, stage: str) -> Optional[Any]:
        """The latest mid-stage checkpoint: coordinator-first.

        The coordinator's copy is authoritative while reachable: another
        worker may have advanced it, and a definitive 404 means it was
        *cleared* (stage finished or restarted) -- a stale local copy is
        dropped rather than resurrected.  Only an **unreachable**
        coordinator falls back to the local partial: resuming from an
        older checkpoint replays the missing batches deterministically,
        so the final artefact stays bit-identical either way.
        """
        try:
            if self._pull(f"{stage}.partial.pkl"):
                return self.local.load_partial(stage)
            self.local.clear_partial(stage)  # authoritative absence
            return None
        except ArtifactTransportError:
            return self.local.load_partial(stage)

    def store_partial(self, stage: str, state: Any) -> Path:
        """Checkpoint locally, then publish (best effort -- a partial
        that fails to upload only costs recomputation on reclaim)."""
        path = self.local.store_partial(stage, state)
        self._push_best_effort(f"{stage}.partial.pkl")
        return path

    def clear_partial(self, stage: str) -> None:
        """Drop the checkpoint locally and on the coordinator."""
        self.local.clear_partial(stage)
        try:
            self.remote.delete(self.config_hash, f"{stage}.partial.pkl")
        except ArtifactTransportError as error:
            ARTIFACT_PUSH_FAILURES.inc(name=f"{stage}.partial.pkl")
            _log.warning(
                "job %s: best-effort delete of %s.partial.pkl failed: %s",
                self.config_hash,
                stage,
                error,
            )

    # -- metadata ------------------------------------------------------------------------

    def write_scenario(self, scenario: ScenarioConfig) -> Path:
        path = self.local.write_scenario(scenario)
        self._push_best_effort("scenario.json")
        return path

    def read_scenario(self) -> Optional[ScenarioConfig]:
        if not (self.directory / "scenario.json").is_file():
            try:
                self._pull("scenario.json")
            except ArtifactTransportError:
                pass
        return self.local.read_scenario()

    def write_report_summary(self, summary: Dict[str, Any]) -> Path:
        path = self.local.write_report_summary(summary)
        self._push_file("report.json")
        return path

    def read_report_summary(self) -> Optional[Dict[str, Any]]:
        if not (self.directory / "report.json").is_file():
            try:
                self._pull("report.json")
            except ArtifactTransportError:
                pass
        return self.local.read_report_summary()

    def write_trace(self, records: List[Dict[str, Any]]) -> Path:
        """Persist the span trace locally, then ship it to the coordinator.

        Best effort like the partials: a trace that fails to upload
        costs visibility, never correctness.
        """
        path = self.local.write_trace(records)
        self._push_best_effort(TRACE_FILE)
        return path

    def read_trace(self) -> Optional[List[Dict[str, Any]]]:
        if not (self.directory / TRACE_FILE).is_file():
            try:
                self._pull(TRACE_FILE)
            except ArtifactTransportError:
                pass
        return self.local.read_trace()
