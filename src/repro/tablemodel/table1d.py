"""One-dimensional table models (the Verilog-A ``$table_model`` analogue).

A :class:`Table1D` wraps sampled ``(x, y)`` data together with a control
specification and provides callable interpolation, exactly like

.. code-block:: verilog

    jvco = $table_model(kvco, "data.tbl", "3E");

in the paper's Listing 2.  The convenience function :func:`table_model`
accepts either in-memory samples or a ``.tbl`` file path.
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from repro.tablemodel.control_string import (
    ControlSpec,
    ExtrapolationMode,
    InterpolationMethod,
    parse_control_string,
)
from repro.tablemodel.spline import Interpolator1D, make_interpolator
from repro.tablemodel.tblfile import read_tbl

__all__ = ["Table1D", "table_model"]


class Table1D:
    """Sampled one-dimensional performance table with spline interpolation.

    Parameters
    ----------
    x, y:
        Sample abscissae and ordinates.  They are sorted and deduplicated
        internally, and every remaining sample is interpolated exactly.
    control:
        A Verilog-A style control string (``"3E"`` by default) or a parsed
        :class:`~repro.tablemodel.control_string.ControlSpec`.
    name:
        Optional label used in reports and generated Verilog-A code.
    """

    def __init__(
        self,
        x: Sequence[float],
        y: Sequence[float],
        control: str | ControlSpec | None = "3E",
        name: str = "",
    ) -> None:
        if isinstance(control, ControlSpec):
            spec = control
        else:
            spec = parse_control_string(control, dimensions=1)[0]
        self.control = spec
        self.name = name
        self._interp: Interpolator1D = make_interpolator(
            x, y, method=spec.method, extrapolation=spec.extrapolation
        )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_tbl(
        cls,
        path: str | os.PathLike,
        control: str | ControlSpec | None = "3E",
        x_column: int = 0,
        y_column: int = 1,
        name: str = "",
    ) -> "Table1D":
        """Load a table from a ``.tbl`` file (first column x, second y)."""
        data = read_tbl(path)
        if data.shape[1] <= max(x_column, y_column):
            raise ValueError(
                f"table file {path!r} has {data.shape[1]} column(s); cannot "
                f"read columns {x_column} and {y_column}"
            )
        return cls(data[:, x_column], data[:, y_column], control, name or str(path))

    # -- evaluation ---------------------------------------------------------

    def __call__(self, value):
        """Interpolate the table at ``value`` (scalar or array)."""
        return self._interp(value)

    def derivative(self, value):
        """First derivative of the interpolated curve at ``value``."""
        return self._interp.derivative(value)

    # -- introspection ------------------------------------------------------

    @property
    def x(self) -> np.ndarray:
        """Sorted, deduplicated sample abscissae."""
        return self._interp.x

    @property
    def y(self) -> np.ndarray:
        """Sample ordinates corresponding to :attr:`x`."""
        return self._interp.y

    @property
    def n_samples(self) -> int:
        """Number of samples stored in the table."""
        return self._interp.n_samples

    @property
    def domain(self) -> tuple[float, float]:
        """Sampled abscissa range ``(min, max)``."""
        return self._interp.domain

    @property
    def method(self) -> InterpolationMethod:
        """Interpolation method selected by the control string."""
        return self.control.method

    @property
    def extrapolation(self) -> ExtrapolationMode:
        """Extrapolation mode selected by the control string."""
        return self.control.extrapolation

    def max_interpolation_error(self, reference, n_points: int = 101) -> float:
        """Largest absolute error against ``reference`` over the domain.

        ``reference`` is any callable accepting an array of abscissae; this
        is used by the interpolation-order ablation benchmark.
        """
        lo, hi = self.domain
        grid = np.linspace(lo, hi, n_points)
        return float(np.max(np.abs(self(grid) - np.asarray(reference(grid), dtype=float))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"Table1D({label} n={self.n_samples}, control={self.control.to_string()!r}, "
            f"domain={self.domain})"
        )


def table_model(
    x,
    y=None,
    control: str | None = "3E",
    name: str = "",
) -> Table1D:
    """Create a :class:`Table1D`, mimicking the Verilog-A call signature.

    Two call forms are supported::

        table_model(xs, ys, "3E")          # in-memory samples
        table_model("kvco_delta.tbl", control="3E")   # load from file

    The second mirrors ``$table_model(kvco, "kvco_delta.tbl", "3E")`` from
    Listing 1 of the paper.
    """
    if isinstance(x, (str, os.PathLike)):
        if y is not None:
            raise TypeError("when loading from a file, pass only the path and control string")
        return Table1D.from_tbl(x, control=control, name=name)
    if y is None:
        raise TypeError("table_model requires both x and y samples")
    return Table1D(x, y, control=control, name=name)
