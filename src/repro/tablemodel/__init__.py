"""Look-up table models with spline interpolation.

This subpackage is the Python equivalent of the Verilog-A ``$table_model``
system function used by the paper (section 2.2 and 3.4).  It provides:

* one-dimensional spline interpolation (linear, quadratic, cubic) that
  passes exactly through every sample point,
* control-string parsing compatible with the Verilog-A table-model syntax
  (``"3E"`` = cubic spline, clamped end behaviour, no extrapolation),
* one-dimensional and N-dimensional table models, and
* reading and writing of ``.tbl`` data files in the whitespace separated
  column format that ``$table_model`` consumes.

The public entry point mirroring the Verilog-A call is :func:`table_model`:

>>> from repro.tablemodel import table_model
>>> model = table_model([0.0, 1.0, 2.0], [0.0, 1.0, 4.0], "3E")
>>> round(model(1.5), 3)
2.25
"""

from repro.tablemodel.control_string import (
    ControlSpec,
    ExtrapolationMode,
    InterpolationMethod,
    parse_control_string,
)
from repro.tablemodel.spline import (
    CubicSpline1D,
    LinearInterpolator1D,
    QuadraticSpline1D,
    make_interpolator,
)
from repro.tablemodel.table1d import Table1D, table_model
from repro.tablemodel.tablend import TableND
from repro.tablemodel.tblfile import read_tbl, write_tbl

__all__ = [
    "ControlSpec",
    "ExtrapolationMode",
    "InterpolationMethod",
    "parse_control_string",
    "CubicSpline1D",
    "QuadraticSpline1D",
    "LinearInterpolator1D",
    "make_interpolator",
    "Table1D",
    "TableND",
    "table_model",
    "read_tbl",
    "write_tbl",
]
