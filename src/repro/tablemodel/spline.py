"""One-dimensional spline interpolators.

These are the numerical workhorses behind the table models.  Three
interpolation degrees are supported, matching the three spline types offered
by the Verilog-A ``$table_model`` function (section 2.2 of the paper):

* :class:`LinearInterpolator1D` -- piecewise linear,
* :class:`QuadraticSpline1D` -- piecewise quadratic with continuous first
  derivative,
* :class:`CubicSpline1D` -- natural cubic spline with continuous first and
  second derivatives (equation (3) of the paper).

All interpolators pass exactly through every sample point ("the number of
fitting parameters ... matches the number of samples", section 3.3) and
gracefully degrade to lower orders when fewer samples are available than the
order requires.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tablemodel.control_string import ExtrapolationMode, InterpolationMethod

__all__ = [
    "Interpolator1D",
    "LinearInterpolator1D",
    "QuadraticSpline1D",
    "CubicSpline1D",
    "make_interpolator",
]


class InterpolationError(ValueError):
    """Raised when an interpolator cannot be constructed from the samples."""


def _validate_samples(x: Sequence[float], y: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.ndim != 1 or y_arr.ndim != 1:
        raise InterpolationError("sample abscissae and ordinates must be one dimensional")
    if x_arr.size != y_arr.size:
        raise InterpolationError(
            f"sample count mismatch: {x_arr.size} abscissae vs {y_arr.size} ordinates"
        )
    if x_arr.size == 0:
        raise InterpolationError("at least one sample point is required")
    if not np.all(np.isfinite(x_arr)) or not np.all(np.isfinite(y_arr)):
        raise InterpolationError("sample points must be finite")
    order = np.argsort(x_arr, kind="stable")
    x_arr = x_arr[order]
    y_arr = y_arr[order]
    if x_arr.size > 1:
        # Collapse duplicates and near-duplicates (closer than a relative
        # epsilon of the sampled span) by averaging their ordinates,
        # otherwise the tridiagonal spline system becomes singular or
        # numerically explosive.
        span = float(x_arr[-1] - x_arr[0])
        tolerance = max(span * 1e-12, 1e-300)
        groups = np.concatenate(([0], np.cumsum(np.diff(x_arr) > tolerance)))
        n_groups = int(groups[-1]) + 1
        if n_groups < 2 and x_arr.size >= 2:
            raise InterpolationError("all sample abscissae are identical")
        if n_groups != x_arr.size:
            sums_x = np.zeros(n_groups)
            sums_y = np.zeros(n_groups)
            counts = np.zeros(n_groups)
            np.add.at(sums_x, groups, x_arr)
            np.add.at(sums_y, groups, y_arr)
            np.add.at(counts, groups, 1.0)
            x_arr = sums_x / counts
            y_arr = sums_y / counts
    return x_arr, y_arr


class Interpolator1D:
    """Common interface for the one-dimensional interpolators.

    Subclasses implement :meth:`_evaluate_inside`, which is only called with
    abscissae inside ``[x[0], x[-1]]``.  Out-of-range handling (clamping,
    linear extrapolation or spline extrapolation) is shared here.
    """

    method: InterpolationMethod

    def __init__(
        self,
        x: Sequence[float],
        y: Sequence[float],
        extrapolation: ExtrapolationMode = ExtrapolationMode.CLAMP,
    ) -> None:
        self.x, self.y = _validate_samples(x, y)
        self.extrapolation = extrapolation

    # -- public API ------------------------------------------------------

    @property
    def n_samples(self) -> int:
        """Number of (deduplicated) sample points."""
        return int(self.x.size)

    @property
    def domain(self) -> tuple[float, float]:
        """Lower and upper bound of the sampled abscissa range."""
        return float(self.x[0]), float(self.x[-1])

    def __call__(self, value):
        """Evaluate the interpolator at a scalar or array of abscissae."""
        arr = np.asarray(value, dtype=float)
        scalar = arr.ndim == 0
        arr = np.atleast_1d(arr)
        result = self._evaluate(arr)
        if scalar:
            return float(result[0])
        return result

    def derivative(self, value, step: float | None = None):
        """Numerical first derivative (central difference) at ``value``."""
        lo, hi = self.domain
        if step is None:
            span = hi - lo
            step = span * 1e-6 if span > 0 else 1e-9
        arr = np.atleast_1d(np.asarray(value, dtype=float))
        up = self(np.clip(arr + step, lo, hi))
        down = self(np.clip(arr - step, lo, hi))
        denom = np.clip(arr + step, lo, hi) - np.clip(arr - step, lo, hi)
        denom = np.where(denom == 0.0, 1.0, denom)
        deriv = (np.atleast_1d(up) - np.atleast_1d(down)) / denom
        if np.asarray(value).ndim == 0:
            return float(deriv[0])
        return deriv

    # -- shared machinery -------------------------------------------------

    def _evaluate(self, arr: np.ndarray) -> np.ndarray:
        if self.n_samples == 1:
            return np.full(arr.shape, float(self.y[0]))
        lo, hi = self.domain
        result = np.empty_like(arr)
        below = arr < lo
        above = arr > hi
        inside = ~(below | above)
        if np.any(inside):
            result[inside] = self._evaluate_inside(arr[inside])
        if np.any(below):
            result[below] = self._evaluate_outside(arr[below], lower=True)
        if np.any(above):
            result[above] = self._evaluate_outside(arr[above], lower=False)
        return result

    def _evaluate_outside(self, arr: np.ndarray, lower: bool) -> np.ndarray:
        lo, hi = self.domain
        edge_x = lo if lower else hi
        edge_y = float(self.y[0] if lower else self.y[-1])
        if self.extrapolation is ExtrapolationMode.CLAMP:
            return np.full(arr.shape, edge_y)
        if self.extrapolation is ExtrapolationMode.LINEAR:
            slope = self._edge_slope(lower)
            return edge_y + slope * (arr - edge_x)
        # Spline extrapolation: evaluate the end segment beyond its range.
        return self._evaluate_inside(arr, allow_outside=True)

    def _edge_slope(self, lower: bool) -> float:
        if lower:
            x0, x1 = self.x[0], self.x[1]
            y0, y1 = self.y[0], self.y[1]
        else:
            x0, x1 = self.x[-2], self.x[-1]
            y0, y1 = self.y[-2], self.y[-1]
        if x1 == x0:
            return 0.0
        return float((y1 - y0) / (x1 - x0))

    def _evaluate_inside(self, arr: np.ndarray, allow_outside: bool = False) -> np.ndarray:
        raise NotImplementedError


class LinearInterpolator1D(Interpolator1D):
    """Piecewise-linear interpolation (Verilog-A degree 1)."""

    method = InterpolationMethod.LINEAR

    def _evaluate_inside(self, arr: np.ndarray, allow_outside: bool = False) -> np.ndarray:
        idx = np.clip(np.searchsorted(self.x, arr, side="right") - 1, 0, self.n_samples - 2)
        x0 = self.x[idx]
        x1 = self.x[idx + 1]
        y0 = self.y[idx]
        y1 = self.y[idx + 1]
        width = np.where(x1 == x0, 1.0, x1 - x0)
        t = (arr - x0) / width
        return y0 + t * (y1 - y0)


class CubicSpline1D(Interpolator1D):
    """Natural cubic spline (Verilog-A degree 3, equation (3) of the paper).

    Each interval ``[x_i, x_{i+1}]`` carries a cubic polynomial

    ``S_i(x) = a_i (x - x_i)^3 + b_i (x - x_i)^2 + c_i (x - x_i) + d_i``

    with continuity of value, first and second derivative at the knots and
    natural boundary conditions (zero second derivative at both ends).
    With fewer than three samples the spline degenerates to linear
    interpolation, which matches Verilog-A simulator behaviour.
    """

    method = InterpolationMethod.CUBIC

    def __init__(
        self,
        x: Sequence[float],
        y: Sequence[float],
        extrapolation: ExtrapolationMode = ExtrapolationMode.CLAMP,
    ) -> None:
        super().__init__(x, y, extrapolation)
        self._build_coefficients()

    def _build_coefficients(self) -> None:
        n = self.n_samples
        if n < 3:
            self._second_derivatives = np.zeros(n)
            return
        h = np.diff(self.x)
        # Tridiagonal system for the second derivatives (natural spline).
        diag = np.zeros(n)
        lower = np.zeros(n)
        upper = np.zeros(n)
        rhs = np.zeros(n)
        diag[0] = diag[-1] = 1.0
        for i in range(1, n - 1):
            lower[i] = h[i - 1]
            diag[i] = 2.0 * (h[i - 1] + h[i])
            upper[i] = h[i]
            rhs[i] = 6.0 * (
                (self.y[i + 1] - self.y[i]) / h[i] - (self.y[i] - self.y[i - 1]) / h[i - 1]
            )
        # Thomas algorithm.
        c_prime = np.zeros(n)
        d_prime = np.zeros(n)
        c_prime[0] = upper[0] / diag[0]
        d_prime[0] = rhs[0] / diag[0]
        for i in range(1, n):
            denom = diag[i] - lower[i] * c_prime[i - 1]
            c_prime[i] = upper[i] / denom
            d_prime[i] = (rhs[i] - lower[i] * d_prime[i - 1]) / denom
        m = np.zeros(n)
        m[-1] = d_prime[-1]
        for i in range(n - 2, -1, -1):
            m[i] = d_prime[i] - c_prime[i] * m[i + 1]
        self._second_derivatives = m

    def coefficients(self, segment: int) -> tuple[float, float, float, float]:
        """Return ``(a, b, c, d)`` of segment ``i`` per equation (3)."""
        n = self.n_samples
        if not 0 <= segment < max(n - 1, 1):
            raise IndexError(f"segment {segment} out of range for {n} samples")
        if n < 3:
            slope = self._edge_slope(lower=True) if n == 2 else 0.0
            return 0.0, 0.0, slope, float(self.y[segment])
        i = segment
        h = float(self.x[i + 1] - self.x[i])
        m_i = float(self._second_derivatives[i])
        m_ip1 = float(self._second_derivatives[i + 1])
        a = (m_ip1 - m_i) / (6.0 * h)
        b = m_i / 2.0
        c = (float(self.y[i + 1]) - float(self.y[i])) / h - h * (2.0 * m_i + m_ip1) / 6.0
        d = float(self.y[i])
        return a, b, c, d

    def _evaluate_inside(self, arr: np.ndarray, allow_outside: bool = False) -> np.ndarray:
        n = self.n_samples
        if n == 2:
            return LinearInterpolator1D(self.x, self.y, self.extrapolation)._evaluate_inside(arr)
        idx = np.clip(np.searchsorted(self.x, arr, side="right") - 1, 0, n - 2)
        h = self.x[idx + 1] - self.x[idx]
        m0 = self._second_derivatives[idx]
        m1 = self._second_derivatives[idx + 1]
        y0 = self.y[idx]
        y1 = self.y[idx + 1]
        dx0 = arr - self.x[idx]
        dx1 = self.x[idx + 1] - arr
        return (
            m0 * dx1**3 / (6.0 * h)
            + m1 * dx0**3 / (6.0 * h)
            + (y0 / h - m0 * h / 6.0) * dx1
            + (y1 / h - m1 * h / 6.0) * dx0
        )


class QuadraticSpline1D(Interpolator1D):
    """Piecewise-quadratic spline with continuous first derivative.

    The first segment starts with the secant slope; subsequent segment
    slopes are propagated so that the first derivative is continuous at the
    knots.  Degrades to linear interpolation with fewer than three samples.
    """

    method = InterpolationMethod.QUADRATIC

    def __init__(
        self,
        x: Sequence[float],
        y: Sequence[float],
        extrapolation: ExtrapolationMode = ExtrapolationMode.CLAMP,
    ) -> None:
        super().__init__(x, y, extrapolation)
        self._build_coefficients()

    def _build_coefficients(self) -> None:
        n = self.n_samples
        if n < 3:
            self._slopes = None
            return
        slopes = np.zeros(n)
        slopes[0] = (self.y[1] - self.y[0]) / (self.x[1] - self.x[0])
        for i in range(1, n):
            h = self.x[i] - self.x[i - 1]
            secant = (self.y[i] - self.y[i - 1]) / h
            slopes[i] = 2.0 * secant - slopes[i - 1]
        self._slopes = slopes

    def _evaluate_inside(self, arr: np.ndarray, allow_outside: bool = False) -> np.ndarray:
        n = self.n_samples
        if n == 2 or self._slopes is None:
            return LinearInterpolator1D(self.x, self.y, self.extrapolation)._evaluate_inside(arr)
        idx = np.clip(np.searchsorted(self.x, arr, side="right") - 1, 0, n - 2)
        h = self.x[idx + 1] - self.x[idx]
        s0 = self._slopes[idx]
        s1 = self._slopes[idx + 1]
        y0 = self.y[idx]
        t = arr - self.x[idx]
        # Quadratic with value y0, slope s0 at the left knot and slope s1 at
        # the right knot.
        a = (s1 - s0) / (2.0 * h)
        return y0 + s0 * t + a * t * t


_METHOD_CLASSES = {
    InterpolationMethod.LINEAR: LinearInterpolator1D,
    InterpolationMethod.QUADRATIC: QuadraticSpline1D,
    InterpolationMethod.CUBIC: CubicSpline1D,
}


def make_interpolator(
    x: Sequence[float],
    y: Sequence[float],
    method: InterpolationMethod = InterpolationMethod.CUBIC,
    extrapolation: ExtrapolationMode = ExtrapolationMode.CLAMP,
) -> Interpolator1D:
    """Build the interpolator class matching ``method``."""
    try:
        cls = _METHOD_CLASSES[method]
    except KeyError as exc:  # pragma: no cover - defensive
        raise InterpolationError(f"unsupported interpolation method {method!r}") from exc
    return cls(x, y, extrapolation)
