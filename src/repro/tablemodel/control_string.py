"""Parsing of Verilog-A ``$table_model`` control strings.

The Verilog-A table-model control string describes, per dimension, the
interpolation degree and the end/extrapolation behaviour.  The paper uses
``"3E"`` for every dimension: degree-3 (cubic spline) interpolation with the
``E`` flag meaning *end-point extrapolation disabled* -- values outside the
sampled range are clamped to the first/last sample instead of being
extrapolated, "in order to avoid approximation of the data beyond the
sampled data points" (section 3.4).

Supported degree characters
    ``1``  linear interpolation
    ``2``  quadratic spline
    ``3``  cubic spline

Supported flag characters (at most one per dimension)
    ``C`` or ``E``  clamp to the end samples (no extrapolation)
    ``L``           linear extrapolation beyond the end samples
    ``X``           true extrapolation using the end spline segment

Multiple dimensions are separated by commas, e.g. ``"3E,3E,1L"``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence


class InterpolationMethod(enum.Enum):
    """Interpolation degree for one table-model dimension."""

    LINEAR = 1
    QUADRATIC = 2
    CUBIC = 3


class ExtrapolationMode(enum.Enum):
    """Behaviour outside the sampled range for one dimension."""

    CLAMP = "clamp"
    LINEAR = "linear"
    SPLINE = "spline"


_DEGREE_CHARS = {
    "1": InterpolationMethod.LINEAR,
    "2": InterpolationMethod.QUADRATIC,
    "3": InterpolationMethod.CUBIC,
}

_FLAG_CHARS = {
    "C": ExtrapolationMode.CLAMP,
    "E": ExtrapolationMode.CLAMP,
    "L": ExtrapolationMode.LINEAR,
    "X": ExtrapolationMode.SPLINE,
}


class ControlStringError(ValueError):
    """Raised when a control string cannot be parsed."""


@dataclass(frozen=True)
class ControlSpec:
    """Parsed control specification for a single table dimension."""

    method: InterpolationMethod = InterpolationMethod.CUBIC
    extrapolation: ExtrapolationMode = ExtrapolationMode.CLAMP

    def to_string(self) -> str:
        """Render back to the Verilog-A control-string token (e.g. ``"3E"``)."""
        degree = str(self.method.value)
        flag = {
            ExtrapolationMode.CLAMP: "E",
            ExtrapolationMode.LINEAR: "L",
            ExtrapolationMode.SPLINE: "X",
        }[self.extrapolation]
        return degree + flag


#: The default used throughout the paper: cubic spline, no extrapolation.
DEFAULT_CONTROL = ControlSpec(InterpolationMethod.CUBIC, ExtrapolationMode.CLAMP)


def _parse_token(token: str) -> ControlSpec:
    token = token.strip()
    if not token:
        return DEFAULT_CONTROL
    method = InterpolationMethod.CUBIC
    extrapolation = ExtrapolationMode.CLAMP
    seen_degree = False
    seen_flag = False
    for char in token.upper():
        if char in _DEGREE_CHARS:
            if seen_degree:
                raise ControlStringError(
                    f"duplicate interpolation degree in control token {token!r}"
                )
            method = _DEGREE_CHARS[char]
            seen_degree = True
        elif char in _FLAG_CHARS:
            if seen_flag:
                raise ControlStringError(
                    f"duplicate extrapolation flag in control token {token!r}"
                )
            extrapolation = _FLAG_CHARS[char]
            seen_flag = True
        elif char.isspace():
            continue
        else:
            raise ControlStringError(
                f"unrecognised character {char!r} in control token {token!r}"
            )
    return ControlSpec(method, extrapolation)


def parse_control_string(control: str | None, dimensions: int = 1) -> List[ControlSpec]:
    """Parse a control string into one :class:`ControlSpec` per dimension.

    Parameters
    ----------
    control:
        The Verilog-A style control string, e.g. ``"3E"`` or ``"3E,3E,1L"``.
        ``None`` or an empty string selects the paper default (``"3E"``)
        for every dimension.
    dimensions:
        Number of table dimensions.  A single token is broadcast to all
        dimensions; otherwise the number of comma-separated tokens must
        match ``dimensions``.

    Returns
    -------
    list of ControlSpec
        One parsed specification per table dimension.
    """
    if dimensions < 1:
        raise ControlStringError("a table model needs at least one dimension")
    if control is None or not control.strip():
        return [DEFAULT_CONTROL] * dimensions
    tokens = [tok for tok in control.split(",")]
    specs = [_parse_token(tok) for tok in tokens]
    if len(specs) == 1 and dimensions > 1:
        return specs * dimensions
    if len(specs) != dimensions:
        raise ControlStringError(
            f"control string {control!r} has {len(specs)} token(s) but the "
            f"table has {dimensions} dimension(s)"
        )
    return specs


def format_control_string(specs: Sequence[ControlSpec]) -> str:
    """Render a sequence of :class:`ControlSpec` back to a control string."""
    return ",".join(spec.to_string() for spec in specs)
