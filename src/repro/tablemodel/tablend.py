"""N-dimensional table models.

The paper's Listing 1 looks design parameters up from the five performance
functions at once::

    p1 = $table_model(kvco, ivco, jvco, fmin, fmax, "p1_data.tbl",
                      "3E,3E,3E,3E,3E");

Pareto-front samples are *scattered* in the performance space (they do not
lie on a regular grid), so :class:`TableND` supports two evaluation modes:

* **grid mode** -- when the sample coordinates form a full tensor-product
  grid, separable spline interpolation of the requested order is applied
  along each axis (this is what Verilog-A itself requires);
* **scattered mode** -- otherwise a modified Shepard inverse-distance
  weighting scheme with per-axis normalisation is used, which still
  reproduces every sample point exactly and clamps queries to the convex
  bounding box when the control string forbids extrapolation.

The choice is automatic and reported through :attr:`TableND.is_grid`.
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from repro.tablemodel.control_string import (
    ControlSpec,
    ExtrapolationMode,
    parse_control_string,
)
from repro.tablemodel.spline import make_interpolator
from repro.tablemodel.tblfile import read_tbl

__all__ = ["TableND"]


class TableND:
    """Multi-dimensional look-up table with interpolation.

    Parameters
    ----------
    points:
        Array of shape ``(n_samples, n_dims)`` with the independent
        coordinates of every sample.
    values:
        Array of shape ``(n_samples,)`` with the dependent value of every
        sample.
    control:
        Verilog-A style control string with one token per dimension (or a
        single token broadcast to all dimensions).
    name:
        Optional label for reports.
    """

    def __init__(
        self,
        points,
        values,
        control: str | Sequence[ControlSpec] | None = "3E",
        name: str = "",
    ) -> None:
        # Contiguous copies: callers often pass column views of a wider
        # matrix, and BLAS reductions (the np.dot in scattered mode) can
        # differ by an ulp between strided and contiguous inputs.  A table
        # restored from a pickle is always contiguous, so storing strided
        # views would make process-pool workers disagree with the parent
        # by an ulp on otherwise identical queries.
        pts = np.ascontiguousarray(points, dtype=float)
        vals = np.ascontiguousarray(values, dtype=float)
        if pts.ndim == 1:
            pts = pts.reshape(-1, 1)
        if pts.ndim != 2:
            raise ValueError("points must be a 2-D array of shape (n_samples, n_dims)")
        if vals.ndim != 1 or vals.size != pts.shape[0]:
            raise ValueError("values must be a 1-D array with one entry per sample")
        if pts.shape[0] == 0:
            raise ValueError("at least one sample point is required")
        if not (np.all(np.isfinite(pts)) and np.all(np.isfinite(vals))):
            raise ValueError("sample points and values must be finite")
        self.points = pts
        self.values = vals
        self.name = name
        if isinstance(control, (str, type(None))):
            self.controls = parse_control_string(control, dimensions=pts.shape[1])
        else:
            self.controls = list(control)
            if len(self.controls) != pts.shape[1]:
                raise ValueError("one ControlSpec per dimension is required")
        self._axes: list[np.ndarray] | None = None
        self._grid_values: np.ndarray | None = None
        self._detect_grid()
        # Per-axis scale used to normalise distances in scattered mode.
        spans = self.points.max(axis=0) - self.points.min(axis=0)
        self._scales = np.where(spans > 0.0, spans, 1.0)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_tbl(
        cls,
        path: str | os.PathLike,
        control: str | None = "3E",
        name: str = "",
    ) -> "TableND":
        """Load a table file whose last column is the dependent value."""
        data = read_tbl(path)
        if data.shape[1] < 2:
            raise ValueError(f"table file {path!r} needs at least two columns")
        return cls(data[:, :-1], data[:, -1], control=control, name=name or str(path))

    # -- properties ---------------------------------------------------------

    @property
    def n_dims(self) -> int:
        """Number of independent dimensions."""
        return int(self.points.shape[1])

    @property
    def n_samples(self) -> int:
        """Number of stored samples."""
        return int(self.points.shape[0])

    @property
    def is_grid(self) -> bool:
        """Whether the samples form a full tensor-product grid."""
        return self._axes is not None

    @property
    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-dimension lower and upper bounds of the sampled region."""
        return self.points.min(axis=0), self.points.max(axis=0)

    # -- evaluation ---------------------------------------------------------

    def __call__(self, *coords):
        """Interpolate at the given coordinates.

        Accepts either one positional argument per dimension (scalars or
        arrays, mirroring the Verilog-A call) or a single array of shape
        ``(n_dims,)`` / ``(n_queries, n_dims)``.
        """
        query, scalar = self._normalise_query(coords)
        if self.is_grid:
            result = np.array([self._eval_grid(row) for row in query])
        else:
            result = self._eval_scattered(query)
        if scalar:
            return float(result[0])
        return result

    def _normalise_query(self, coords) -> tuple[np.ndarray, bool]:
        scalar = False
        if len(coords) == 1 and not np.isscalar(coords[0]):
            arr = np.asarray(coords[0], dtype=float)
            if arr.ndim == 1 and arr.size == self.n_dims:
                query = arr.reshape(1, -1)
                scalar = self.n_dims > 1
            elif arr.ndim == 2 and arr.shape[1] == self.n_dims:
                query = arr
            elif self.n_dims == 1:
                query = arr.reshape(-1, 1)
            else:
                raise ValueError(
                    f"query shape {arr.shape} incompatible with {self.n_dims} dimensions"
                )
        else:
            if len(coords) != self.n_dims:
                raise ValueError(
                    f"expected {self.n_dims} coordinate argument(s), got {len(coords)}"
                )
            scalar = all(np.ndim(c) == 0 for c in coords)
            broadcast = np.broadcast_arrays(*[np.atleast_1d(np.asarray(c, float)) for c in coords])
            query = np.column_stack(broadcast)
        return self._apply_clamping(query), scalar

    def _apply_clamping(self, query: np.ndarray) -> np.ndarray:
        lo, hi = self.bounds
        clamped = query.copy()
        for dim, spec in enumerate(self.controls):
            if spec.extrapolation is ExtrapolationMode.CLAMP:
                clamped[:, dim] = np.clip(clamped[:, dim], lo[dim], hi[dim])
        return clamped

    # -- grid mode -----------------------------------------------------------

    def _detect_grid(self) -> None:
        axes = [np.unique(self.points[:, d]) for d in range(self.n_dims)]
        expected = int(np.prod([axis.size for axis in axes]))
        if expected != self.n_samples or expected == 0:
            return
        # Map every sample onto its grid cell; verify each cell is filled once.
        grid = np.full([axis.size for axis in axes], np.nan)
        indices = []
        for d, axis in enumerate(axes):
            idx = np.searchsorted(axis, self.points[:, d])
            indices.append(idx)
        grid[tuple(indices)] = self.values
        if np.any(np.isnan(grid)):
            return
        self._axes = axes
        self._grid_values = grid

    def _eval_grid(self, coord: np.ndarray) -> float:
        assert self._axes is not None and self._grid_values is not None
        values = self._grid_values
        # Interpolate one axis at a time (separable interpolation), reducing
        # the grid dimensionality until a scalar remains.
        for dim in range(self.n_dims - 1, -1, -1):
            axis = self._axes[dim]
            spec = self.controls[dim]
            if axis.size == 1:
                values = np.take(values, 0, axis=dim)
                continue
            moved = np.moveaxis(values, dim, -1)
            flat = moved.reshape(-1, axis.size)
            reduced = np.empty(flat.shape[0])
            for row_index, row in enumerate(flat):
                interp = make_interpolator(axis, row, spec.method, spec.extrapolation)
                reduced[row_index] = interp(float(coord[dim]))
            values = reduced.reshape(moved.shape[:-1])
        return float(values)

    # -- scattered mode -------------------------------------------------------

    def _eval_scattered(self, query: np.ndarray) -> np.ndarray:
        # Modified Shepard weighting: exact at samples, smooth in between.
        scaled_points = self.points / self._scales
        scaled_query = query / self._scales
        results = np.empty(query.shape[0])
        for i, q in enumerate(scaled_query):
            deltas = scaled_points - q
            dist2 = np.einsum("ij,ij->i", deltas, deltas)
            exact = dist2 < 1e-24
            if np.any(exact):
                results[i] = float(np.mean(self.values[exact]))
                continue
            weights = 1.0 / dist2**1.5
            results[i] = float(np.dot(weights, self.values) / np.sum(weights))
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "grid" if self.is_grid else "scattered"
        label = f" {self.name!r}" if self.name else ""
        return f"TableND({label} n={self.n_samples}, dims={self.n_dims}, mode={mode})"
