""".tbl data-file reading and writing.

The Verilog-A ``$table_model`` function consumes plain-text files of
whitespace-separated numeric columns where the last column is the dependent
value and the preceding columns are the independent variables.  The paper
stores the Pareto-front performance points and their Monte-Carlo spreads in
such files (``kvco_delta.tbl``, ``p1_data.tbl``, ...).

This module reads and writes that format, preserving optional ``#`` comment
headers so the generated files are self-documenting.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

import numpy as np

__all__ = ["read_tbl", "write_tbl", "read_tbl_with_header"]


class TblFormatError(ValueError):
    """Raised when a ``.tbl`` file cannot be parsed."""


def _parse_lines(lines: Iterable[str], path: str) -> tuple[list[str], np.ndarray]:
    comments: list[str] = []
    rows: list[list[float]] = []
    width: int | None = None
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(("#", "//", "*", ";")):
            comments.append(line.lstrip("#/*; ").rstrip())
            continue
        parts = line.replace(",", " ").split()
        try:
            values = [float(part) for part in parts]
        except ValueError as exc:
            raise TblFormatError(f"{path}:{lineno}: non-numeric value in {line!r}") from exc
        if width is None:
            width = len(values)
        elif len(values) != width:
            raise TblFormatError(
                f"{path}:{lineno}: expected {width} column(s), found {len(values)}"
            )
        rows.append(values)
    if not rows:
        raise TblFormatError(f"{path}: no data rows found")
    return comments, np.asarray(rows, dtype=float)


def read_tbl(path: str | os.PathLike) -> np.ndarray:
    """Read a ``.tbl`` file and return its numeric contents as a 2-D array."""
    return read_tbl_with_header(path)[1]


def read_tbl_with_header(path: str | os.PathLike) -> tuple[list[str], np.ndarray]:
    """Read a ``.tbl`` file returning ``(comment_lines, data)``."""
    path_str = os.fspath(path)
    with open(path_str, "r", encoding="utf-8") as handle:
        return _parse_lines(handle, path_str)


def write_tbl(
    path: str | os.PathLike,
    data,
    header: Sequence[str] | str | None = None,
    fmt: str = "%.9e",
) -> None:
    """Write a 2-D array of samples to a ``.tbl`` file.

    Parameters
    ----------
    path:
        Destination file path; parent directories must already exist.
    data:
        Array-like of shape ``(n_rows, n_columns)``.  One-dimensional input
        is treated as a single column.
    header:
        Optional comment line(s) written with a ``#`` prefix.
    fmt:
        ``printf``-style format used for each value.
    """
    array = np.asarray(data, dtype=float)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise TblFormatError("table data must be one- or two-dimensional")
    if array.size == 0:
        raise TblFormatError("refusing to write an empty table file")
    if isinstance(header, str):
        header_lines = [header]
    else:
        header_lines = list(header or [])
    path_str = os.fspath(path)
    with open(path_str, "w", encoding="utf-8") as handle:
        for line in header_lines:
            handle.write(f"# {line}\n")
        for row in array:
            handle.write(" ".join(fmt % value for value in row))
            handle.write("\n")
