"""repro -- reproduction of "Improved Performance and Variation Modelling
for Hierarchical-based Optimisation of Analogue Integrated Circuits"
(Ali, Ke, Wilcock, Wilson; DATE 2009).

The package is organised bottom-up:

* :mod:`repro.tablemodel` -- Verilog-A ``$table_model`` style look-up
  tables with spline interpolation and ``.tbl`` file I/O.
* :mod:`repro.optim` -- the NSGA-II multi-objective optimisation framework
  (non-dominated sorting, crowding distance, SBX, polynomial mutation,
  constraint domination) plus baselines and front-quality metrics.
* :mod:`repro.spice` -- a from-scratch MNA circuit simulator (DC, transient,
  AC) with a compact MOSFET model, used as the transistor-level engine.
* :mod:`repro.process` -- the generic 0.12 um technology, process corners,
  global variation, Pelgrom mismatch and the Monte Carlo engine.
* :mod:`repro.circuits` -- the 5-stage current-starved ring-oscillator VCO:
  netlist generator, SPICE test bench and the calibrated analytical
  evaluator used inside the optimisation loop.
* :mod:`repro.behavioural` -- Kundert-style behavioural PLL blocks (PFD,
  charge pump, loop filter, divider, jitter-injecting VCO) and the
  time-domain / linear PLL analyses.
* :mod:`repro.core` -- the paper's contribution: performance model,
  variation model, combined model, hierarchical flow, yield analysis,
  bottom-up verification and Verilog-A code generation.
* :mod:`repro.experiments` -- the scenario registry, content-addressed
  artefact cache, resumable experiment runner and the ``repro`` CLI.

Quick start::

    from repro import HierarchicalFlow
    report = HierarchicalFlow().run()
    print(report.summary())

or, through the scenario layer (resumable, cached)::

    from repro.experiments import ExperimentRunner, get_scenario
    result = ExperimentRunner(get_scenario("fast-smoke")).run()
    print(result.summary())
"""

from repro.core.combined_model import CombinedPerformanceVariationModel
from repro.core.flow import FlowReport, HierarchicalFlow
from repro.core.performance_model import PerformanceModel
from repro.core.specification import PLL_SPECIFICATIONS, Specification, SpecificationSet
from repro.core.variation_model import VariationModel
from repro.experiments import ExperimentRunner, ScenarioConfig, get_scenario

#: Kept in sync with ``[project] version`` in pyproject.toml.
__version__ = "0.6.0"

__all__ = [
    "HierarchicalFlow",
    "FlowReport",
    "PerformanceModel",
    "VariationModel",
    "CombinedPerformanceVariationModel",
    "Specification",
    "SpecificationSet",
    "PLL_SPECIFICATIONS",
    "ScenarioConfig",
    "ExperimentRunner",
    "get_scenario",
    "__version__",
]
