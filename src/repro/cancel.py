"""Cooperative cancellation of long-running computations.

The flow's expensive loops (the circuit stage's NSGA-II generations, the
yield stage's Monte Carlo batches) only observe cancellation at their
**checkpoint boundaries**: each loop persists its mid-stage partial first
and polls the token right after, so a cancelled run always leaves a
consistent, resumable artefact behind -- cancellation can interrupt a
computation but never corrupt it.  Resubmitting the same configuration
resumes from the last persisted generation/batch bit-identically.

The token is deliberately dependency-free and duck-simple so every layer
(optimiser, flow stages, experiment runner, service workers) can accept
one without importing anything heavier than this module:

* local callers flip it directly with :meth:`CancelToken.cancel` (e.g. a
  signal handler);
* the experiment service's workers construct it with a ``should_cancel``
  callable polling the job store's ``cancel_requested`` flag, throttled
  by ``poll_interval`` so checking at every boundary stays cheap.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["CancelToken", "JobCancelled"]


class JobCancelled(Exception):
    """Raised at a checkpoint boundary once cancellation was observed.

    Deliberately *not* a ``RuntimeError`` subclass: generic error handling
    (e.g. the worker's catch-all that marks jobs ``failed``) must not
    swallow a cancellation, which is an orderly outcome, not a failure.
    """


class CancelToken:
    """Cooperative, poll-based cancellation flag.

    Parameters
    ----------
    should_cancel:
        Optional zero-argument callable consulted by :meth:`is_cancelled`
        (e.g. a job-store query).  Once it returns ``True`` the token
        latches: the source is never polled again and the token stays
        cancelled.
    poll_interval:
        Minimum seconds between two ``should_cancel`` polls.  Checkpoint
        boundaries can be microseconds apart on small problems; the
        throttle keeps the (possibly database-backed) source from being
        hammered.  ``0`` polls on every check.
    """

    def __init__(
        self,
        should_cancel: Optional[Callable[[], bool]] = None,
        poll_interval: float = 0.0,
    ) -> None:
        if poll_interval < 0:
            raise ValueError("poll_interval must be >= 0")
        self._should_cancel = should_cancel
        self._poll_interval = float(poll_interval)
        self._cancelled = False
        self._last_poll: Optional[float] = None

    def cancel(self) -> None:
        """Latch the token cancelled (local/manual cancellation)."""
        self._cancelled = True

    def is_cancelled(self) -> bool:
        """Whether cancellation has been requested (latches once true)."""
        if self._cancelled:
            return True
        if self._should_cancel is None:
            return False
        now = time.monotonic()
        if (
            self._last_poll is not None
            and now - self._last_poll < self._poll_interval
        ):
            return False
        self._last_poll = now
        if self._should_cancel():
            self._cancelled = True
        return self._cancelled

    def raise_if_cancelled(self) -> None:
        """Raise :class:`JobCancelled` when cancellation was requested.

        The one call sites use at checkpoint boundaries: state has just
        been persisted, so unwinding here is always safe.
        """
        if self.is_cancelled():
            raise JobCancelled("cancellation requested")
